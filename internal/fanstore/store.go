// Package fanstore implements the paper's primary contribution: a
// distributed, compressed, POSIX-style object store for deep-learning
// training data (§IV, §V).
//
// Each node (MPI rank) runs a Node: it loads its assigned compressed
// partitions into node-local storage, exchanges metadata with all peers
// via Allgather so the full namespace is resolvable from RAM, and serves
// its partitions' file bytes to peers over the interconnect. File opens
// decompress into a reference-counted FIFO cache; reads are memory copies
// out of that cache. The write path implements the paper's multi-read /
// single-write model: an output file is written once, sealed on close,
// and its metadata forwarded to the owner rank.
//
// The data path is layered:
//
//	routing   — fetchRemote picks among the owner and its replicas,
//	            rotating for load spreading and failing over on error
//	transport — internal/rpc: framed request/response over mpi.Comm,
//	            answered concurrently by a bounded daemon worker pool
//	cache     — the ref-counted decompressed pool (cache.go)
//	backend   — Backend (backend.go): RAM or spill-to-disk storage of
//	            the compressed objects
//
// The paper's glibc function interception (LD_PRELOAD + trampoline, §V-C)
// is replaced by the equivalent user-space API surface on Node/File:
// Open/Read/Lseek/Write/Close/Stat/ReadDir — the same minimal POSIX
// interface of Listing 1, served entirely in user space.
package fanstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fanstore/internal/codec"
	"fanstore/internal/decomp"
	"fanstore/internal/ec"
	"fanstore/internal/member"
	"fanstore/internal/metrics"
	"fanstore/internal/mpi"
	"fanstore/internal/obs"
	"fanstore/internal/pack"
	"fanstore/internal/rpc"
	"fanstore/internal/trace"
)

// Message tags used by the FanStore daemon protocol.
const (
	tagFetch     = 1000 // fetch request: rpc frame carrying an op + body
	tagWriteMeta = 1001 // write metadata forward: encoded []FileMeta
	tagRing      = 1002 // ring replication of extra partitions
	tagCtrl      = 1003 // elastic control plane: join/rebalance/shutdown (elastic.go)
	tagRespBase  = 1 << 20
)

// Fetch request ops, the first byte of every tagFetch payload. All ops
// are answered by the same daemon worker pool — rebalance partition
// pulls deliberately share it with reads, so a handoff streams while
// the cluster keeps serving.
const (
	// opFetchOne requests one object; the body is the path, the response
	// payload is [u16 compressorID][compressed bytes].
	opFetchOne = byte(0)
	// opFetchMany requests a batch: the body is rpc.EncodeKeys(paths),
	// the response an rpc.EncodeItems frame with per-item status, each
	// OK payload shaped like an opFetchOne response. One round trip
	// carries the whole look-ahead window.
	opFetchMany = byte(1)
	// opFetchOneV is the elastic opFetchOne: the body is
	// [u64 mapVersion][path]. A server missing the object answers the
	// stale status instead of not-found when its map version disagrees
	// with the caller's — "I don't have it, and one of us is routing on
	// an old map" — so the caller refreshes instead of burning failovers.
	opFetchOneV = byte(2)
	// opFetchPart requests a whole partition blob by its global id
	// ([u64 gid]) — the rebalance transfer: the new owner pulls the blob
	// from the old owner over the ordinary fetch pool while the old
	// owner keeps serving its objects until the handoff commits.
	opFetchPart = byte(3)
	// opMetaSync requests one path's current metadata record from the
	// coordinator (the stale-map refresh's metadata half); the response
	// is encodeMetas of zero or one record.
	opMetaSync = byte(4)
	// opFetchShard requests every erasure shard of one partition held by
	// the answering node ([u64 gid]); the response is a concatenation of
	// pack shard frames. Degraded reads and shard repair gather through
	// it (ec redundancy mode only).
	opFetchShard = byte(5)
	// opStoreShard delivers one or more shard frames for the answering
	// node to hold — the shard-placement half of ec redundancy. Re-pushes
	// of the same (gid, index) overwrite.
	opStoreShard = byte(6)
	// opFetchOneL is the budgeted opFetchOne: the body is
	// [u8 level][path]. For a layered object the response payload is the
	// container prefix covering the first `level` layers — the
	// bandwidth-proportional read; unlayered objects (and level
	// FidelityFull) answer the whole payload, exactly like opFetchOne.
	opFetchOneL = byte(7)
	// opFetchOneVL is the elastic budgeted fetch:
	// [u64 mapVersion][u8 level][path], with opFetchOneV's stale-status
	// semantics on a miss.
	opFetchOneVL = byte(8)
	// opFetchManyL is the budgeted opFetchMany: the body is
	// rpc.EncodeKeysLevels(paths, levels) and each OK item is clipped to
	// its per-item layer budget.
	opFetchManyL = byte(9)
	// opFetchRange requests raw payload bytes of one object:
	// [u64 off][u32 len][path]. The response is the bytes themselves, no
	// compressor header — the upgrade path uses it to pull only the
	// refinement extents a cached lower-fidelity entry is missing.
	opFetchRange = byte(10)
)

// batchGetConcurrency bounds concurrent backend reads inside one
// FetchMany handler, so a batch over a spill backend overlaps its disk
// reads instead of serializing them, without letting one huge batch
// monopolize the backend.
const batchGetConcurrency = 8

// Errors returned by the FS surface.
var (
	ErrNotExist   = errors.New("fanstore: file does not exist")
	ErrIsDir      = errors.New("fanstore: is a directory")
	ErrNotDir     = errors.New("fanstore: not a directory")
	ErrExist      = errors.New("fanstore: file already exists")
	ErrClosed     = errors.New("fanstore: file already closed")
	ErrReadOnly   = errors.New("fanstore: file not open for writing")
	ErrWriteOnly  = errors.New("fanstore: file not open for reading")
	ErrUnmounted  = errors.New("fanstore: node unmounted")
	ErrRemoteGone = errors.New("fanstore: remote fetch failed")
	// ErrVanished reports a fetch whose every candidate authoritatively
	// answered not-found on a current map: the object is genuinely gone
	// (deleted, or its record outlived its data), as opposed to
	// ErrRemoteGone's unreachable-or-stale routes. It matches ErrNotExist
	// and ErrRemoteGone under errors.Is for backward compatibility.
	ErrVanished = errors.New("fanstore: object vanished")
)

// vanishedError carries the vanished diagnosis while staying matchable
// as the not-found and remote-failure families callers already handle.
type vanishedError struct {
	path string
	err  error
}

func (e *vanishedError) Error() string {
	return fmt.Sprintf("fanstore: %q vanished: every candidate reports not-found on a current map (%v)", e.path, e.err)
}

func (e *vanishedError) Is(target error) bool {
	return target == ErrVanished || target == ErrNotExist || target == ErrRemoteGone
}

func (e *vanishedError) Unwrap() error { return e.err }

// Options configures a Node.
//
// Knob lifetimes: some fields are live-tunable after Mount — the online
// autotuner (internal/tune, the -tune flag) moves them through atomics
// while training runs — and the rest are mount-only. Live-tunable:
// DecodeWorkers (Node.SetDecodeWorkers), BatchItems (Node.SetBatchItems),
// the admission budget (Node.SetAdmissionBytes, read live by the plan
// scheduler), and the fidelity level (Node.SetFidelity). Mount-only:
// CacheBytes and CacheShards stay fixed for the node's lifetime —
// resizing or restriping the sharded cache would require a stop-the-
// world rehash of every resident entry, which no mid-epoch gain
// justifies — along with the backend, redundancy, and transport fields.
type Options struct {
	// CacheBytes bounds the decompressed data cache (default 256 MiB).
	// Mount-only: the cache never resizes live (see the knob-lifetimes
	// note above).
	CacheBytes int64
	// CachePolicy selects the replacement policy (default FIFO).
	CachePolicy Policy
	// CacheShards overrides the decompressed cache's stripe count,
	// rounded up to a power of two (0: automatic — sized to GOMAXPROCS,
	// reduced for small capacities). 1 reproduces the old single-lock
	// cache for comparison benchmarks. Mount-only: restriping live
	// would rehash every resident entry (see the knob-lifetimes note).
	CacheShards int
	// DecodeWorkers bounds the shared decode pool that demand opens and
	// the look-ahead prefetcher decompress through (default GOMAXPROCS).
	// 1 reproduces serial decode for comparison benchmarks.
	// Live-tunable: Node.SetDecodeWorkers resizes the pool without
	// dropping queued jobs.
	DecodeWorkers int
	// Replicas are extra partition blobs this node serves locally
	// without owning them (typically obtained via RingReplicate when the
	// node has spare local storage, §V-D). Their paths are announced to
	// all peers during Mount, so remote opens route to this node as an
	// alternative to the owner.
	Replicas [][]byte
	// SpillDir selects the local-disk backend: partition blobs are
	// written under this directory and compressed payloads are read back
	// on demand, freeing RAM for the training program (the paper's SSD
	// backend). Empty means the RAM backend. Ignored when Backend is set.
	SpillDir string
	// Backend overrides the storage backend entirely (nil: RAM, or the
	// spill backend when SpillDir is set). See NewRAMBackend and
	// NewSpillBackend.
	Backend Backend
	// FetchWorkers bounds the daemon's concurrent fetch handlers
	// (default: GOMAXPROCS, floored at 4). 1 reproduces the old serial
	// daemon for comparison benchmarks.
	FetchWorkers int
	// FetchTimeout bounds each remote fetch attempt (0: no deadline).
	FetchTimeout time.Duration
	// FetchRetries is how many extra attempts follow a timed-out or
	// errored fetch to the same peer, before routing fails over to the
	// next replica (default 0).
	FetchRetries int
	// FetchBackoff is the pause before the first same-peer retry,
	// doubling per attempt (default 0: immediate).
	FetchBackoff time.Duration
	// BatchItems bounds the objects carried by one FetchMany round trip;
	// larger prefetch groups are split into plan-sized calls so a whole-
	// epoch window cannot build one monster frame (default
	// rpc.DefaultBatchItems). Live-tunable: Node.SetBatchItems takes
	// effect on the next prefetch split, mid-plan.
	BatchItems int
	// DisableCoalescing turns off the singleflight sharing of concurrent
	// fetch+decode work for the same path, reproducing the duplicate-
	// fetch behaviour for comparison benchmarks and ablations.
	DisableCoalescing bool
	// Redundancy selects the fault-tolerance mode: whole-partition
	// replication (default) or ec(k,m) erasure coding, which stripes
	// every partition into k data + m parity shards scattered across the
	// cluster at m/k overhead (see ParseRedundancy for the flag syntax).
	// Erasure coding requires an elastic mount — the shard placement and
	// the repair job route through the membership coordinator.
	Redundancy Redundancy
	// Metrics re-homes every data-path instrument (cache, rpc, store) in
	// a shared registry, so one snapshot captures the whole rank and the
	// cluster report can merge rank snapshots name-by-name. Nil means a
	// private registry: counters still work, Stats() stays truthful.
	Metrics *metrics.Registry
	// Tracer records per-operation spans (open, fetch, decompress, evict,
	// prefetch) into a fixed-size ring for Chrome trace export. Nil
	// disables tracing at zero cost on the hot path.
	Tracer *trace.Tracer
	// Events receives structured fault-path events (failover, map
	// change, rebalance lifecycle, degraded reads, EC repair, eviction
	// pressure) for the ops server's /events endpoint. Nil disables
	// emission at zero cost on the data path.
	Events *obs.EventLog
}

// RingReplicate passes each rank's partition blobs to its ring neighbor
// and returns the blobs received from the predecessor. The paper uses
// this to place additional partition copies without re-reading the shared
// filesystem: with roughly equal partition sizes the transfers are
// contention-free (§V-D). Send and receive are interleaved per partition
// — at most one blob is in flight each way — so memory stays bounded and
// a rendezvous-style transport cannot deadlock on large partition sets.
// Collective: every rank must call it.
func RingReplicate(comm *mpi.Comm, partitions [][]byte) ([][]byte, error) {
	next := comm.Neighbor()
	prev := (comm.Rank() + comm.Size() - 1) % comm.Size()

	// Header exchange: post the count send asynchronously so a
	// rendezvous transport can match it with the recv below.
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(partitions)))
	hdrErr := make(chan error, 1)
	go func() { hdrErr <- comm.Send(next, tagRing, cnt[:]) }()
	hdr, _, err := comm.Recv(prev, tagRing)
	if serr := <-hdrErr; serr != nil {
		return nil, fmt.Errorf("fanstore: ring replicate: %w", serr)
	}
	if err != nil {
		return nil, fmt.Errorf("fanstore: ring replicate: %w", err)
	}
	if len(hdr) != 4 {
		return nil, fmt.Errorf("fanstore: ring replicate: bad count frame")
	}
	nRecv := int(binary.LittleEndian.Uint32(hdr))

	rounds := len(partitions)
	if nRecv > rounds {
		rounds = nRecv
	}
	out := make([][]byte, 0, nRecv)
	for i := 0; i < rounds; i++ {
		var sendErr chan error
		if i < len(partitions) {
			sendErr = make(chan error, 1)
			blob := partitions[i]
			go func() { sendErr <- comm.Send(next, tagRing, blob) }()
		}
		if i < nRecv {
			blob, _, err := comm.Recv(prev, tagRing)
			if err != nil {
				if sendErr != nil {
					<-sendErr
				}
				return nil, fmt.Errorf("fanstore: ring replicate: %w", err)
			}
			out = append(out, blob)
		}
		if sendErr != nil {
			if err := <-sendErr; err != nil {
				return nil, fmt.Errorf("fanstore: ring replicate: %w", err)
			}
		}
	}
	return out, nil
}

// Stats counts data-path events for tests and benchmarks.
type Stats struct {
	LocalOpens      int64
	RemoteOpens     int64
	ZeroCopyOpens   int64 // uncompressed objects served straight from the blob
	Decompresses    int64
	BytesRead       int64
	RemoteBytes     int64
	Failovers       int64 // fetches re-routed to another replica after an error
	BatchedFetches  int64 // FetchMany calls issued by this rank's prefetcher
	PrefetchedOpens int64 // opens served by an entry Prefetch staged
	// FetchCoalesced counts opens that joined another producer's
	// in-flight fetch+decode instead of issuing their own (singleflight).
	FetchCoalesced int64
	// PrefetchSuppressed counts prefetch targets dropped because the
	// object was already staged or already being produced by a
	// concurrent open or overlapping prefetch.
	PrefetchSuppressed int64
	// FetchUpgrades counts in-place fidelity upgrades: a cached lower-
	// fidelity entry promoted by fetching only its missing refinement
	// extents instead of the whole object.
	FetchUpgrades int64
	// FetchBytesSaved totals the container bytes budgeted fetches and
	// upgrades did NOT move, relative to fetching each object whole at
	// full fidelity — the bandwidth-proportional read's dividend.
	FetchBytesSaved int64
	Cache           CacheStats
	Daemon          rpc.ServerStats // this rank's fetch daemon (peer-facing)
	RPC             rpc.ClientStats // this rank's outbound fetch calls
}

// Node is one rank's FanStore instance: metadata table, storage backend,
// decompressed cache, and the daemon servicing peers.
type Node struct {
	comm    *mpi.Comm
	cache   *Cache
	backend Backend
	decode  *decomp.Pool // shared decode workers (opens > prefetch)

	// Elastic identity. In a static Mount the view is the identity
	// StaticMap (node ID i == rank i, version 1) and every membership
	// code path degenerates to the fixed-world behaviour; an elastic
	// mount (elastic.go) wires a live view fed by the coordinator.
	view    *member.View
	selfID  member.NodeID
	elastic bool
	mem     *member.Membership // nil on static mounts
	ectrl   *elasticCtrl       // elastic control plane; nil on static mounts
	ec      *ecState           // erasure redundancy; nil on replicate mounts

	mu   sync.RWMutex
	meta map[string]*FileMeta
	dirs *dirIndex
	// writes holds sealed output files (uncompressed, write-once).
	writes map[string][]byte
	// parts tracks the loaded partition blobs by global id for rebalance
	// transfers (opFetchPart). Only elastic mounts populate it — static
	// mounts never hand partitions off, and not retaining the blobs
	// keeps the spill backend's RAM profile unchanged.
	parts map[uint64]*nodePart

	// inflight deduplicates concurrent producers of the same not-yet-
	// cached file — demand opens and prefetch staging alike: one leader
	// fetches and decompresses, the rest wait and share the cache entry
	// (Fig. 4's refcount, extended through the fetch by flight.go).
	inflightMu sync.Mutex
	inflight   map[string]*flight
	noCoalesce bool
	// batchItems is the max objects per FetchMany call — atomic because
	// the autotuner retunes it mid-plan (SetBatchItems) while the
	// prefetch path reads it per split.
	batchItems atomic.Int64
	// admission is the live staged-bytes budget the plan scheduler reads
	// through AdmissionBytes each admission decision (0: cache headroom).
	admission atomic.Int64

	server *rpc.Server // answers peers' fetch requests (tagFetch)
	client *rpc.Client // issues fetch requests to peers

	routeSeq atomic.Int64 // rotates fetch routing across owner+replicas
	closed   atomic.Bool
	daemon   sync.WaitGroup // the write-metadata service loop

	// fidelity is the node's current layer budget for demand opens and
	// default prefetches: 0 means full fidelity, k means "decode only the
	// first k layers of layered objects". A fidelity schedule (epochs 0–3
	// at the base layer, say) flips it between epochs via SetFidelity.
	fidelity atomic.Uint32

	// Registry-backed data-path instruments ("fanstore.*"); Stats() and
	// Metrics() are thin views over them.
	reg    *metrics.Registry
	tracer *trace.Tracer
	events *obs.EventLog // nil unless the ops plane is enabled

	// statusExtra holds extra /statusz section renderers registered via
	// AddStatus (the -tune controller's section rides here).
	statusMu    sync.Mutex
	statusExtra []func(*obs.StatusWriter)

	localOpens, remoteOpens, zeroCopyOpens *metrics.Counter
	decompresses, failovers                *metrics.Counter
	bytesRead, remoteBytes                 *metrics.Counter
	batchedFetches                         *metrics.Counter
	fetchCoalesced, prefetchSuppressed     *metrics.Counter
	mapRefreshes                           *metrics.Counter
	fetchUpgrades, fetchBytesSaved         *metrics.Counter
	mapVersion                             *metrics.Gauge

	openHist       *metrics.Histogram // whole open(): lookup + fetch + decompress
	fetchHist      *metrics.Histogram // remote fetch round trips only
	decompressHist *metrics.Histogram // codec time per decompressed object
	readHist       *metrics.Histogram // whole-file reads (ReadFile)
	fidelityHist   *metrics.Histogram // layers decoded per layered decode (µs = level)
}

// instrument registers the node's counters and histograms in its
// registry. Mount calls it before any traffic.
func (n *Node) instrument() {
	n.localOpens = n.reg.Counter("fanstore.opens.local")
	n.remoteOpens = n.reg.Counter("fanstore.opens.remote")
	n.zeroCopyOpens = n.reg.Counter("fanstore.opens.zerocopy")
	n.decompresses = n.reg.Counter("fanstore.decompresses")
	n.failovers = n.reg.Counter("fanstore.failovers")
	n.bytesRead = n.reg.Counter("fanstore.bytes.read")
	n.remoteBytes = n.reg.Counter("fanstore.bytes.remote")
	n.batchedFetches = n.reg.Counter("fanstore.fetch.batched")
	n.fetchCoalesced = n.reg.Counter("fanstore.fetch.coalesced")
	n.prefetchSuppressed = n.reg.Counter("fanstore.prefetch.suppressed")
	n.mapRefreshes = n.reg.Counter("fanstore.map.refreshes")
	n.fetchUpgrades = n.reg.Counter("fanstore.fetch.upgrades")
	n.fetchBytesSaved = n.reg.Counter("fanstore.fetch.bytes.saved")
	n.mapVersion = n.reg.Gauge("member.map.version")
	n.openHist = n.reg.Histogram("fanstore.open.latency")
	n.fetchHist = n.reg.Histogram("fanstore.fetch.latency")
	n.decompressHist = n.reg.Histogram("fanstore.decompress.latency")
	n.readHist = n.reg.Histogram("fanstore.read.latency")
	// The fidelity histogram abuses the duration scale as a unitless one:
	// each layered decode observes its decoded layer count as that many
	// microseconds, so Snapshot.Sum/Count recovers the mean level.
	n.fidelityHist = n.reg.Histogram("fanstore.fidelity.level")
}

// Metrics exposes the node's latency histograms: open() end-to-end, the
// remote-fetch round trip, and the daemon-side in-service time. The
// bimodal open() distribution (local decompress vs. remote fetch) is the
// signature of a healthy FanStore deployment.
type Metrics struct {
	Open    metrics.Snapshot
	Fetch   metrics.Snapshot
	Service metrics.Snapshot // daemon worker time per answered fetch
}

// Metrics snapshots the node's latency histograms.
func (n *Node) Metrics() Metrics {
	return Metrics{
		Open:    n.openHist.Snapshot(),
		Fetch:   n.fetchHist.Snapshot(),
		Service: n.server.ServiceTime(),
	}
}

// newNode builds a Node's data-path machinery — cache, backend, decode
// pool, rpc server/client, instruments — without any collective traffic.
// Mount (static) and MountElastic share it; only the view and the
// metadata exchange differ.
func newNode(comm *mpi.Comm, view *member.View, selfID member.NodeID, elastic bool, opts Options) (*Node, error) {
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 256 << 20
	}
	backend := opts.Backend
	if backend == nil {
		if opts.SpillDir != "" {
			var err error
			backend, err = NewSpillBackend(opts.SpillDir, fmt.Sprintf("rank%04d", comm.Rank()))
			if err != nil {
				return nil, err
			}
		} else {
			backend = NewRAMBackend()
		}
	}
	reg := opts.Metrics
	if reg == nil {
		// A private registry keeps Stats()/Metrics() truthful even when
		// the caller did not ask for unified observability.
		reg = metrics.NewRegistry()
	}
	batchItems := opts.BatchItems
	if batchItems <= 0 {
		batchItems = rpc.DefaultBatchItems
	}
	n := &Node{
		comm:       comm,
		cache:      NewCacheShards(opts.CacheBytes, opts.CachePolicy, opts.CacheShards),
		backend:    backend,
		decode:     decomp.New(opts.DecodeWorkers, reg),
		view:       view,
		selfID:     selfID,
		elastic:    elastic,
		meta:       make(map[string]*FileMeta),
		dirs:       newDirIndex(),
		writes:     make(map[string][]byte),
		parts:      make(map[uint64]*nodePart),
		inflight:   make(map[string]*flight),
		noCoalesce: opts.DisableCoalescing,
		reg:        reg,
		tracer:     opts.Tracer,
		events:     opts.Events,
	}
	n.batchItems.Store(int64(batchItems))
	if opts.Redundancy.Mode == RedundancyEC {
		if !elastic {
			return nil, fmt.Errorf("fanstore: ec redundancy requires an elastic mount (static mounts replicate)")
		}
		code, err := ec.New(opts.Redundancy.K, opts.Redundancy.M)
		if err != nil {
			return nil, err
		}
		n.ec = newECState(code, reg)
	}
	n.instrument()
	n.mapVersion.Set(int64(view.Version()))
	n.cache.instrument(reg, opts.Tracer)
	n.cache.setEvents(opts.Events)
	n.server = rpc.NewServer(comm, tagFetch, n.handleFetch, rpc.ServerOptions{
		Workers: opts.FetchWorkers,
		Metrics: reg,
	})
	n.client = rpc.NewClient(comm, tagFetch, tagRespBase, rpc.ClientOptions{
		Timeout: opts.FetchTimeout,
		Retries: opts.FetchRetries,
		Backoff: opts.FetchBackoff,
		Metrics: reg,
	})
	return n, nil
}

// Mount loads this rank's partitions (plus an optional broadcast
// partition replicated on every rank), exchanges metadata and replica
// announcements with all peers, and starts the daemon. Every rank of the
// communicator must call Mount collectively with its own partitions.
func Mount(comm *mpi.Comm, partitions [][]byte, broadcast []byte, opts Options) (*Node, error) {
	// The static world is the identity map: node ID i is rank i, and the
	// version never moves past 1, so stale-map machinery stays inert.
	n, err := newNode(comm, member.NewView(member.StaticMap(comm.Size())), member.NodeID(comm.Rank()), false, opts)
	if err != nil {
		return nil, err
	}

	// Load assigned partitions into the local backend (§IV-C1).
	var localMetas []FileMeta
	for _, blob := range partitions {
		metas, err := n.loadPartition(blob)
		if err != nil {
			return nil, err
		}
		localMetas = append(localMetas, metas...)
	}
	// Replica partitions are served locally but owned by the rank that
	// announces them; this rank announces only the paths, so peers can
	// route fetches here as an alternative to the owner.
	var replicaPaths []string
	for _, blob := range opts.Replicas {
		metas, err := n.loadPartition(blob)
		if err != nil {
			return nil, err
		}
		for i := range metas {
			replicaPaths = append(replicaPaths, metas[i].Path)
		}
	}
	// The broadcast partition (validation data) is local on every rank
	// but owned by rank 0 for metadata purposes; it is not re-announced
	// by every rank to keep the Allgather frames linear in dataset size.
	if broadcast != nil {
		bmetas, err := n.loadPartition(broadcast)
		if err != nil {
			return nil, err
		}
		if comm.Rank() == 0 {
			localMetas = append(localMetas, bmetas...)
		}
	}

	// Construct the global metadata view (§IV-C1): one Allgather, then
	// all metadata traffic is served from RAM.
	frames, err := comm.Allgather(encodeMetas(localMetas))
	if err != nil {
		return nil, fmt.Errorf("fanstore: metadata allgather: %w", err)
	}
	for r, frame := range frames {
		metas, err := decodeMetas(frame)
		if err != nil {
			return nil, fmt.Errorf("fanstore: rank %d metadata: %w", r, err)
		}
		for i := range metas {
			n.addMeta(metas[i])
		}
	}

	// Second collective: replica announcements. Running it after the
	// metadata exchange guarantees every owner record exists before a
	// replica rank is attached to it, whatever the rank order.
	repFrames, err := comm.Allgather(encodePaths(replicaPaths))
	if err != nil {
		return nil, fmt.Errorf("fanstore: replica allgather: %w", err)
	}
	for r, frame := range repFrames {
		paths, err := decodePaths(frame)
		if err != nil {
			return nil, fmt.Errorf("fanstore: rank %d replicas: %w", r, err)
		}
		for _, p := range paths {
			n.noteReplica(p, r)
		}
	}

	n.daemon.Add(1)
	go n.server.Serve()
	go n.serveWriteMeta()
	return n, nil
}

// loadPartition parses one partition blob into the backend and returns
// this rank's metadata records for its entries, stamped with this node's
// ID and the current map version.
func (n *Node) loadPartition(blob []byte) ([]FileMeta, error) {
	p, err := pack.Parse(blob)
	if err != nil {
		return nil, err
	}
	if err := n.backend.AddPartition(blob, p); err != nil {
		return nil, err
	}
	metas := make([]FileMeta, 0, len(p.Entries))
	for i := range p.Entries {
		e := &p.Entries[i]
		fm := FileMeta{
			Path:         cleanPath(e.Path),
			Size:         e.Stat.Size,
			Mode:         e.Stat.Mode,
			MTime:        e.Stat.MTime,
			CRC32:        e.Stat.CRC32,
			CompressorID: e.CompressorID,
			Owner:        int32(n.selfID),
			MapVersion:   n.view.Version(),
		}
		// Layered entries carry their cumulative extent table in the
		// metadata record, so every rank can turn a fidelity budget into
		// a byte range without touching the container first.
		if ix, ok, err := e.LayerIndex(); err == nil && ok {
			lp := make([]uint32, ix.Layers())
			for k := range lp {
				lp[k] = uint32(ix.PrefixSize(k + 1))
			}
			fm.LayerPrefix = lp
		}
		metas = append(metas, fm)
	}
	return metas, nil
}

// nodePart is one loaded partition blob an elastic node can hand off to
// a new owner during a rebalance.
type nodePart struct {
	gid   uint64 // cluster-wide partition id assigned by the coordinator
	blob  []byte
	paths []string // clean paths of the partition's entries
}

// loadPartitionGID loads a partition and registers it under its global
// id for rebalance transfers. Elastic mounts only.
func (n *Node) loadPartitionGID(gid uint64, blob []byte) ([]FileMeta, error) {
	metas, err := n.loadPartition(blob)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(metas))
	for i := range metas {
		metas[i].PartGID = gid
		paths[i] = metas[i].Path
	}
	n.mu.Lock()
	n.parts[gid] = &nodePart{gid: gid, blob: blob, paths: paths}
	n.mu.Unlock()
	return metas, nil
}

// dropPartition forgets a handed-off partition: the old owner's half of
// a rebalance commit. The decompressed cache is untouched — entries for
// the moved paths still hold correct bytes; only the compressed source
// moves.
func (n *Node) dropPartition(gid uint64) {
	n.mu.Lock()
	p := n.parts[gid]
	delete(n.parts, gid)
	n.mu.Unlock()
	if p != nil {
		n.backend.Remove(p.paths)
	}
}

// addMeta inserts one record into the namespace (last writer wins, which
// only matters for the broadcast partition seen via rank 0).
func (n *Node) addMeta(m FileMeta) {
	n.mu.Lock()
	cp := cleanPath(m.Path)
	m.Path = cp
	n.meta[cp] = &m
	n.dirs.add(cp, m.Size)
	n.mu.Unlock()
}

// noteReplica records that rank also serves path's compressed object.
func (n *Node) noteReplica(path string, rank int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.meta[cleanPath(path)]
	if !ok || m.Owner == int32(rank) {
		return // replica of an unannounced partition, or the owner itself
	}
	for _, r := range m.Replicas {
		if r == int32(rank) {
			return
		}
	}
	m.Replicas = append(m.Replicas, int32(rank))
}

// handleFetch answers one peer fetch on a daemon worker, dispatching on
// the op byte: a single-object request or a batched FetchMany. Unknown
// single objects map to the transport's not-found status (the requester
// fails over or surfaces ErrRemoteGone); batched misses are reported
// per item.
func (n *Node) handleFetch(_ int, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("fanstore: empty fetch frame")
	}
	switch payload[0] {
	case opFetchOne:
		return n.fetchObject(string(payload[1:]))
	case opFetchMany:
		return n.handleFetchMany(payload[1:])
	case opFetchOneV:
		return n.handleFetchOneV(payload[1:])
	case opFetchPart:
		return n.handleFetchPart(payload[1:])
	case opMetaSync:
		return n.handleMetaSync(payload[1:])
	case opFetchShard:
		return n.handleFetchShard(payload[1:])
	case opStoreShard:
		return n.handleStoreShard(payload[1:])
	case opFetchOneL:
		return n.handleFetchOneL(payload[1:])
	case opFetchOneVL:
		return n.handleFetchOneVL(payload[1:])
	case opFetchManyL:
		return n.handleFetchManyL(payload[1:])
	case opFetchRange:
		return n.handleFetchRange(payload[1:])
	default:
		return nil, fmt.Errorf("fanstore: unknown fetch op %d", payload[0])
	}
}

// handleFetchOneV answers a versioned fetch. The version check only
// triggers on a miss: while both sides agree on the map, or the object
// is simply present, the op behaves exactly like opFetchOne. A miss
// under version disagreement means the caller routed here on a map that
// predates (or postdates) a rebalance — the stale status tells it to
// refresh instead of failing over through dead routes.
func (n *Node) handleFetchOneV(body []byte) ([]byte, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("fanstore: short versioned fetch frame")
	}
	callerVer := binary.LittleEndian.Uint64(body)
	resp, err := n.fetchObject(string(body[8:]))
	if err != nil && errors.Is(err, rpc.ErrNotFound) {
		if have := n.view.Version(); have != callerVer {
			return nil, fmt.Errorf("%w: have v%d, caller routed on v%d", rpc.ErrStale, have, callerVer)
		}
	}
	return resp, err
}

// handleFetchPart streams one loaded partition blob to a new owner —
// the rebalance transfer. It runs on the ordinary fetch worker pool, so
// handoffs share bandwidth with reads instead of stopping them.
func (n *Node) handleFetchPart(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, fmt.Errorf("fanstore: bad partition fetch frame")
	}
	gid := binary.LittleEndian.Uint64(body)
	n.mu.RLock()
	p := n.parts[gid]
	n.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w: partition %d", rpc.ErrNotFound, gid)
	}
	resp := decomp.GetBuf(len(p.blob))
	return append(resp, p.blob...), nil
}

// handleMetaSync answers a single-path metadata refresh from this
// node's table (callers direct it at the coordinator, whose table is
// authoritative after a commit). Unknown paths return an empty list,
// not an error: the caller's next fetch will surface the real miss.
func (n *Node) handleMetaSync(body []byte) ([]byte, error) {
	cp := cleanPath(string(body))
	n.mu.RLock()
	m, ok := n.meta[cp]
	var rec FileMeta
	if ok {
		rec = *m
	}
	n.mu.RUnlock()
	if !ok {
		return append(decomp.GetBuf(4), encodeMetas(nil)...), nil
	}
	enc := encodeMetas([]FileMeta{rec})
	return append(decomp.GetBuf(len(enc)), enc...), nil
}

// fetchObject serves one object's compressed bytes as
// [u16 compressorID][compressed bytes].
func (n *Node) fetchObject(path string) ([]byte, error) {
	n.mu.RLock()
	wdata, written := n.writes[path]
	n.mu.RUnlock()
	if written && wdata != nil {
		// Output files are stored uncompressed; frame them as "store",
		// compressing straight into a pooled response frame.
		resp := decomp.GetBuf(2 + len(wdata) + binary.MaxVarintLen64)[:2]
		binary.LittleEndian.PutUint16(resp, codec.StoreID)
		resp, err := codec.MustGet("store").Codec.Compress(resp, wdata)
		if err != nil {
			decomp.PutBuf(resp)
			return nil, err
		}
		return resp, nil
	}
	id, data, err := n.backend.Get(path)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil, rpc.ErrNotFound
		}
		return nil, err
	}
	resp := decomp.GetBuf(2 + len(data))[:2]
	binary.LittleEndian.PutUint16(resp, id)
	return append(resp, data...), nil
}

// fetchObjectBudget is fetchObject under a layer budget: a layered
// object's payload is clipped to the container prefix covering the first
// `level` layers — any prefix of layers decodes to a valid lower-fidelity
// record, so the response is self-contained. Unlayered objects (written
// files included) and the full-fidelity level answer whole.
func (n *Node) fetchObjectBudget(path string, level uint8) ([]byte, error) {
	resp, err := n.fetchObject(path)
	if err != nil || level == 0 || level == FidelityFull || len(resp) < 2 {
		return resp, err
	}
	id := binary.LittleEndian.Uint16(resp)
	if !codec.IsLayered(id) {
		return resp, nil
	}
	ix, perr := codec.ParseLayerIndex(resp[2:])
	if perr != nil {
		// A corrupt index would fail the client's decode anyway; answer
		// whole so the error surfaces with full evidence.
		return resp, nil
	}
	if k := int(level); k < ix.Layers() {
		resp = resp[:2+ix.PrefixSize(k)]
	}
	return resp, nil
}

// handleFetchOneL answers a budgeted single fetch: [u8 level][path].
func (n *Node) handleFetchOneL(body []byte) ([]byte, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("fanstore: short budgeted fetch frame")
	}
	return n.fetchObjectBudget(string(body[1:]), body[0])
}

// handleFetchOneVL answers the elastic budgeted fetch:
// [u64 mapVersion][u8 level][path], with opFetchOneV's stale diagnosis
// on a version-mismatched miss.
func (n *Node) handleFetchOneVL(body []byte) ([]byte, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("fanstore: short versioned budgeted fetch frame")
	}
	callerVer := binary.LittleEndian.Uint64(body)
	resp, err := n.fetchObjectBudget(string(body[9:]), body[8])
	if err != nil && errors.Is(err, rpc.ErrNotFound) {
		if have := n.view.Version(); have != callerVer {
			return nil, fmt.Errorf("%w: have v%d, caller routed on v%d", rpc.ErrStale, have, callerVer)
		}
	}
	return resp, err
}

// handleFetchManyL answers a budgeted batch: the body is
// rpc.EncodeKeysLevels and every OK item is clipped to its own layer
// budget, so one round trip carries a mixed-fidelity window.
func (n *Node) handleFetchManyL(body []byte) ([]byte, error) {
	paths, levels, err := rpc.DecodeKeysLevels(body)
	if err != nil {
		return nil, err
	}
	items := make([]rpc.Item, len(paths))
	sem := make(chan struct{}, batchGetConcurrency)
	var wg sync.WaitGroup
	for i, path := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, path string, level uint8) {
			defer wg.Done()
			defer func() { <-sem }()
			payload, err := n.fetchObjectBudget(path, level)
			switch {
			case err == nil:
				items[i] = rpc.Item{Status: rpc.ItemOK, Payload: payload}
			case errors.Is(err, rpc.ErrNotFound):
				items[i] = rpc.Item{Status: rpc.ItemNotFound}
			default:
				items[i] = rpc.Item{Status: rpc.ItemError, Payload: []byte(err.Error())}
			}
		}(i, path, levels[i])
	}
	wg.Wait()
	out := rpc.EncodeItems(items)
	for i := range items {
		if items[i].Status == rpc.ItemOK {
			decomp.PutBuf(items[i].Payload)
			items[i].Payload = nil
		}
	}
	return out, nil
}

// handleFetchRange answers a raw byte-range read of one object's payload:
// [u64 off][u32 len][path] → the bytes themselves, no compressor header.
// The upgrade path uses it to pull exactly the refinement extents a
// cached lower-fidelity entry is missing.
func (n *Node) handleFetchRange(body []byte) ([]byte, error) {
	if len(body) < 12 {
		return nil, fmt.Errorf("fanstore: short range fetch frame")
	}
	off := binary.LittleEndian.Uint64(body)
	length := binary.LittleEndian.Uint32(body[8:])
	path := string(body[12:])
	id, data, err := n.backend.Get(path)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil, rpc.ErrNotFound
		}
		return nil, err
	}
	if !codec.IsLayered(id) {
		return nil, fmt.Errorf("fanstore: range fetch of unlayered object %q", path)
	}
	end := off + uint64(length)
	if end < off || end > uint64(len(data)) {
		return nil, fmt.Errorf("fanstore: range [%d,%d) outside %q payload (%d bytes)", off, end, path, len(data))
	}
	resp := decomp.GetBuf(int(length))
	return append(resp, data[off:end]...), nil
}

// handleFetchMany answers a batched fetch: every requested object is
// read from the backend with bounded concurrency (a cold batch over the
// spill backend overlaps its disk reads) and answered in request order
// with per-item status, so a partial miss never fails the whole batch.
func (n *Node) handleFetchMany(body []byte) ([]byte, error) {
	paths, err := rpc.DecodeKeys(body)
	if err != nil {
		return nil, err
	}
	items := make([]rpc.Item, len(paths))
	sem := make(chan struct{}, batchGetConcurrency)
	var wg sync.WaitGroup
	for i, path := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			payload, err := n.fetchObject(path)
			switch {
			case err == nil:
				items[i] = rpc.Item{Status: rpc.ItemOK, Payload: payload}
			case errors.Is(err, rpc.ErrNotFound):
				items[i] = rpc.Item{Status: rpc.ItemNotFound}
			default:
				items[i] = rpc.Item{Status: rpc.ItemError, Payload: []byte(err.Error())}
			}
		}(i, path)
	}
	wg.Wait()
	out := rpc.EncodeItems(items)
	// EncodeItems copied every payload into the response frame; the
	// per-item fetchObject frames are dead — recycle them.
	for i := range items {
		if items[i].Status == rpc.ItemOK {
			decomp.PutBuf(items[i].Payload)
			items[i].Payload = nil
		}
	}
	return out, nil
}

// fetchCandidates lists the node IDs that can serve m's compressed
// object, owner first, excluding this node. IDs, not ranks: the caller
// resolves each through the cluster-map view at dial time, so routing
// survives rank reassignment between a meta read and the fetch.
func (n *Node) fetchCandidates(m *FileMeta) []member.NodeID {
	cands := make([]member.NodeID, 0, 1+len(m.Replicas))
	self := int32(n.selfID)
	if m.Owner != self {
		cands = append(cands, member.NodeID(m.Owner))
	}
	for _, r := range m.Replicas {
		if r != self && r != m.Owner {
			cands = append(cands, member.NodeID(r))
		}
	}
	return cands
}

// refreshRoutes is the stale-map recovery path: sync the membership
// view from the coordinator, pull the path's current metadata record,
// and return the refreshed record for re-resolution. Static mounts have
// nothing to refresh and return nil.
func (n *Node) refreshRoutes(path string) *FileMeta {
	if !n.elastic || n.mem == nil {
		return nil
	}
	n.mapRefreshes.Inc()
	if _, err := n.mem.Sync(); err != nil {
		return nil
	}
	n.mapVersion.Set(int64(n.view.Version()))
	// The coordinator's table is authoritative after a commit; pull the
	// one record this fetch needs.
	coord := n.mem.CoordRank()
	if coord != n.comm.Rank() {
		req := make([]byte, 1, 1+len(path))
		req[0] = opMetaSync
		if resp, err := n.client.Call(coord, append(req, path...)); err == nil {
			if metas, err := decodeMetas(resp); err == nil && len(metas) == 1 {
				n.addMeta(metas[0])
			}
		}
	}
	n.mu.RLock()
	m := n.meta[cleanPath(path)]
	n.mu.RUnlock()
	return m
}

// fetchRemote retrieves the compressed object for m over the interconnect
// (§IV-C2) and returns (compressorID, compressed, outcome). Routing is
// replica-aware: requests rotate across the owner and its replicas to
// spread load, and an errored peer triggers failover to the next
// candidate, so a lost rank degrades throughput instead of killing opens.
// The outcome distinguishes a first-candidate success (remote-fetch) from
// one that needed failover, so the open span carries routing health.
//
// On an elastic mount candidates resolve through the cluster-map view,
// and a version-mismatch answer (rpc.ErrStale, or an unresolvable node
// ID) triggers a map-and-metadata refresh followed by re-resolution
// against the refreshed record — not a failover: the object exists, the
// route was just planned on an old map.
//
// level is the layer budget: 0 or FidelityFull fetches the whole object
// with the classic ops; anything else rides the budgeted ops and the
// server clips layered containers to the level's prefix. Bytes the clip
// kept off the wire are credited to fetch.bytes.saved.
func (n *Node) fetchRemote(m *FileMeta, level uint8) (uint16, []byte, trace.Outcome, error) {
	start := time.Now()
	tstart := n.tracer.Begin()
	outcome := trace.OutcomeRemoteFetch
	path := m.Path
	defer func() {
		n.fetchHist.Observe(time.Since(start))
		n.tracer.End(trace.OpFetch, path, outcome, tstart)
	}()
	// Two refreshes bound the recovery loop: one covers the common
	// "commit landed between my meta read and my fetch" race, the second
	// a commit racing the refresh itself. The cap is what keeps a
	// genuinely deleted object — whose every fetch answers not-found and
	// whose every refresh returns the same doomed record — from spinning
	// the refresh loop forever; after it trips, the all-misses pass is
	// diagnosed as ErrVanished below rather than retried.
	const maxRefreshes = 2
	refreshes := 0
	var lastErr error
	aborted := false
	allNotFound := false
	for {
		cands := n.fetchCandidates(m)
		if len(cands) == 0 {
			lastErr = fmt.Errorf("no remote node serves %q", path)
			break
		}
		first := int(n.routeSeq.Add(1)) % len(cands)
		stale := false
		attempts, misses := 0, 0
		for i := 0; i < len(cands); i++ {
			id := cands[(first+i)%len(cands)]
			dst, err := n.view.Resolve(id)
			if err != nil {
				// The meta names a node this map doesn't know (or knows
				// dead): the record and the map disagree — refresh.
				lastErr = err
				stale = true
				continue
			}
			attempts++
			budgeted := level != 0 && level != FidelityFull
			var req []byte
			switch {
			case n.elastic && budgeted:
				req = make([]byte, 10, 10+len(path))
				req[0] = opFetchOneVL
				binary.LittleEndian.PutUint64(req[1:], n.view.Version())
				req[9] = level
			case n.elastic:
				req = make([]byte, 9, 9+len(path))
				req[0] = opFetchOneV
				binary.LittleEndian.PutUint64(req[1:], n.view.Version())
			case budgeted:
				req = make([]byte, 2, 2+len(path))
				req[0] = opFetchOneL
				req[1] = level
			default:
				req = make([]byte, 1, 1+len(path))
				req[0] = opFetchOne
			}
			resp, err := n.client.Call(dst, append(req, path...))
			if err == nil {
				if len(resp) < 2 {
					lastErr = fmt.Errorf("rank %d sent a malformed object frame", dst)
					continue
				}
				n.remoteBytes.Add(int64(len(resp)))
				n.creditBytesSaved(m, int64(len(resp)-2))
				return binary.LittleEndian.Uint16(resp), resp[2:], outcome, nil
			}
			lastErr = err
			if errors.Is(err, mpi.ErrAborted) {
				aborted = true
				break // the world is gone; no candidate can answer
			}
			if errors.Is(err, rpc.ErrStale) {
				stale = true
				continue // a refresh, not a failover, fixes this
			}
			if errors.Is(err, rpc.ErrNotFound) {
				misses++
				if n.elastic {
					// Even a version-matched miss can be a commit race: map
					// and meta land in separate steps, so this node may have
					// routed to the old owner under the new version after
					// the owner already dropped the partition. Suspect a
					// stale route first; only when the refresh cap trips
					// with every candidate still answering not-found is the
					// object declared vanished.
					stale = true
				}
				continue
			}
			if i+1 < len(cands) {
				n.failovers.Inc()
				outcome = trace.OutcomeFailover
				if n.events.Enabled() {
					n.events.Emitf(obs.EvFailover, obs.SevWarn,
						"fetch %q: node %d errored (%v), failing over", path, id, err)
				}
			}
		}
		allNotFound = attempts > 0 && misses == attempts
		if aborted {
			break
		}
		if stale && refreshes < maxRefreshes {
			refreshes++
			if fresh := n.refreshRoutes(path); fresh != nil {
				m = fresh
				continue
			}
		}
		break
	}
	// Every whole-object route is exhausted. On an erasure-coded mount
	// the partition is still recoverable while at least k shards survive:
	// reconstruct it and serve the read degraded. This is the path that
	// keeps reads flowing between a rank dying and the repair commit.
	if n.ec != nil && m.PartGID != 0 && !aborted {
		if id, comp, err := n.ecDegradedObject(m); err == nil {
			n.remoteBytes.Add(int64(len(comp)))
			outcome = trace.OutcomeDegraded
			return id, comp, outcome, nil
		} else if lastErr == nil {
			lastErr = err
		}
	}
	outcome = trace.OutcomeError
	if allNotFound && (!n.elastic || refreshes > 0) {
		// The routes were current (or just refreshed) and every candidate
		// authoritatively answered not-found: the object is gone, not
		// mis-routed — callers can distinguish this from transport death.
		if n.events.Enabled() {
			n.events.Emitf(obs.EvFailover, obs.SevError, "object %q vanished: every candidate reports not-found", path)
		}
		return 0, nil, outcome, &vanishedError{path: path, err: lastErr}
	}
	return 0, nil, outcome, fmt.Errorf("%w: %v", ErrRemoteGone, lastErr)
}

// creditBytesSaved accounts a budgeted fetch's dividend: the container
// bytes a whole-object full-fidelity fetch of m would have moved, minus
// what actually crossed the wire. No-op for unlayered objects and
// unclipped responses.
func (n *Node) creditBytesSaved(m *FileMeta, fetched int64) {
	if L := m.Layers(); L > 0 {
		if saved := int64(m.LayerPrefix[L-1]) - fetched; saved > 0 {
			n.fetchBytesSaved.Add(saved)
		}
	}
}

// fetchRemoteRange pulls payload bytes [off, off+length) of m's layered
// container — the refinement extents an upgrade is missing. It walks the
// same rotated candidate list as fetchRemote but without the stale-map
// recovery loop: an upgrade is an opportunistic fast path, so any failure
// just returns and the caller falls back to a whole budgeted fetch (which
// owns refresh and failover).
func (n *Node) fetchRemoteRange(m *FileMeta, off int64, length int) ([]byte, error) {
	cands := n.fetchCandidates(m)
	if len(cands) == 0 {
		return nil, fmt.Errorf("fanstore: no remote node serves %q", m.Path)
	}
	first := int(n.routeSeq.Add(1)) % len(cands)
	var lastErr error
	for i := 0; i < len(cands); i++ {
		dst, err := n.view.Resolve(cands[(first+i)%len(cands)])
		if err != nil {
			lastErr = err
			continue
		}
		req := make([]byte, 13, 13+len(m.Path))
		req[0] = opFetchRange
		binary.LittleEndian.PutUint64(req[1:], uint64(off))
		binary.LittleEndian.PutUint32(req[9:], uint32(length))
		resp, err := n.client.Call(dst, append(req, m.Path...))
		if err != nil {
			lastErr = err
			if errors.Is(err, mpi.ErrAborted) {
				break
			}
			continue
		}
		if len(resp) != length {
			lastErr = fmt.Errorf("fanstore: range fetch of %q returned %d bytes, want %d", m.Path, len(resp), length)
			continue
		}
		n.remoteBytes.Add(int64(len(resp)))
		return resp, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrRemoteGone, lastErr)
}

// prefetchTarget is one not-yet-staged remote object being walked
// through its candidate ranks by Prefetch. The target's flight (the
// prefetch is its leader) is finished nil as soon as the object is
// staged, or with errFlightAbandoned when every replica failed — so a
// demand open racing the window either shares the staged entry or
// falls back to its own fetch, never an error from a best-effort path.
type prefetchTarget struct {
	m      *FileMeta
	flight *flight
	cands  []member.NodeID // candidate node IDs in try order
	next   int             // index into cands of the node to ask next
}

// Prefetch stages an upcoming access window (the sampler's next
// iterations) into the decompressed cache ahead of the consumer: paths
// that are neither local, cached, nor already being opened are grouped
// by replica owner, each group is fetched with one FetchMany round trip
// — issued concurrently across owners — and the decompressed results
// are inserted unpinned (InsertIdle), so prefetched-but-unopened files
// stay evictable and a canceled epoch cannot wedge the pool. It is
// best-effort: a partial miss or peer failure falls over to the next
// replica and finally to on-demand fetching at Open; Prefetch never
// fails the training loop. Returns the number of objects staged.
// Prefetch stages at the node's current fidelity level (SetFidelity).
func (n *Node) Prefetch(paths []string) int {
	return n.PrefetchFidelity(paths, n.FidelityLevel())
}

// PrefetchFidelity is Prefetch under an explicit layer budget: layered
// objects are fetched as level-layer container prefixes (one budgeted
// batch round trip per owner) and staged at that fidelity. A cached entry
// already at or above the budget suppresses the target; prefetch never
// upgrades a resident entry — upgrades belong to the demand path, which
// knows a reader actually wants the extra layers.
func (n *Node) PrefetchFidelity(paths []string, level uint8) int {
	if n.closed.Load() || len(paths) == 0 {
		return 0
	}
	level = normalizeFidelity(level)
	tstart := n.tracer.Begin()
	defer n.tracer.End(trace.OpPrefetch, "", trace.OutcomeNone, tstart)
	// Resolve the window down to remote, uncached, not-in-flight paths.
	targets := make([]*prefetchTarget, 0, len(paths))
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		cp := cleanPath(p)
		if seen[cp] {
			continue
		}
		seen[cp] = true
		n.mu.RLock()
		m, ok := n.meta[cp]
		_, written := n.writes[cp]
		n.mu.RUnlock()
		if !ok || written || n.backend.Contains(cp) {
			continue
		}
		want := metaFidelity(m, level)
		if n.cache.ContainsFidelity(cp, want) {
			n.prefetchSuppressed.Inc() // already staged or resident at this fidelity
			continue
		}
		if n.cache.Contains(cp) {
			// Resident below the budget: leave it — a demand open at the
			// higher level will upgrade in place, which is cheaper than a
			// speculative re-stage.
			n.prefetchSuppressed.Inc()
			continue
		}
		cands := n.fetchCandidates(m)
		if len(cands) == 0 {
			continue
		}
		f, leader := n.beginFlightFid(cp, want)
		if !leader {
			// A demand open or an overlapping prefetch is already
			// producing it; that flight's result lands in the cache.
			n.prefetchSuppressed.Inc()
			continue
		}
		// Rotate the starting candidate like fetchRemote does, so
		// prefetch load also spreads across the owner and its replicas.
		rot := int(n.routeSeq.Add(1)) % len(cands)
		ordered := make([]member.NodeID, 0, len(cands))
		for i := range cands {
			ordered = append(ordered, cands[(rot+i)%len(cands)])
		}
		targets = append(targets, &prefetchTarget{m: m, flight: f, cands: ordered})
	}
	// Round-based failover: each round groups the remaining targets by
	// their next candidate and fetches the groups concurrently; targets
	// a peer could not serve move to their next replica.
	staged := 0
	for len(targets) > 0 {
		groups := make(map[member.NodeID][]*prefetchTarget)
		for _, t := range targets {
			groups[t.cands[t.next]] = append(groups[t.cands[t.next]], t)
		}
		var mu sync.Mutex
		var retry []*prefetchTarget
		var wg sync.WaitGroup
		for id, group := range groups {
			// Resolve the group's node once per round. An unresolvable ID
			// (it left, or the map is behind) just moves the group to its
			// next replica — prefetch is best-effort; the demand path owns
			// stale-map recovery.
			dst, err := n.view.Resolve(id)
			if err != nil {
				mu.Lock()
				retry = append(retry, group...)
				mu.Unlock()
				continue
			}
			wg.Add(1)
			go func(dst int, group []*prefetchTarget) {
				defer wg.Done()
				ok, failed := n.prefetchFrom(dst, group, level)
				mu.Lock()
				staged += ok
				retry = append(retry, failed...)
				mu.Unlock()
			}(dst, group)
		}
		wg.Wait()
		targets = targets[:0]
		for _, t := range retry {
			if t.next++; t.next < len(t.cands) {
				targets = append(targets, t)
			} else {
				// Every replica failed: abandon the flight so waiting
				// opens retry on demand rather than inheriting a
				// best-effort failure.
				n.finishFlight(t.m.Path, t.flight, errFlightAbandoned)
			}
		}
	}
	return staged
}

// prefetchFrom fetches group from dst with as many plan-sized FetchMany
// calls as BatchItems requires — an epoch-scale plan batch cannot build
// one monster frame — and returns the targets dst could not serve so
// the caller can fail over.
func (n *Node) prefetchFrom(dst int, group []*prefetchTarget, level uint8) (staged int, failed []*prefetchTarget) {
	keys := make([]string, len(group))
	for i, t := range group {
		keys[i] = t.m.Path
	}
	off := 0
	// The split size is read live: a mid-plan SetBatchItems (the
	// autotuner's fetch-shape knob) reshapes the very next call.
	for _, chunk := range rpc.SplitKeys(keys, n.BatchItems()) {
		ok, f := n.prefetchChunk(dst, chunk, group[off:off+len(chunk)], level)
		off += len(chunk)
		staged += ok
		failed = append(failed, f...)
	}
	return staged, failed
}

// prefetchChunk issues one FetchMany call to dst for one plan-sized
// slice of targets, decompresses and stages what came back, and
// finishes the flight of every staged target so coalesced opens
// unblock as soon as their object lands.
func (n *Node) prefetchChunk(dst int, keys []string, group []*prefetchTarget, level uint8) (staged int, failed []*prefetchTarget) {
	var req []byte
	if level != FidelityFull {
		levels := make([]uint8, len(keys))
		for i := range levels {
			levels[i] = level
		}
		req = append([]byte{opFetchManyL}, rpc.EncodeKeysLevels(keys, levels)...)
	} else {
		req = append([]byte{opFetchMany}, rpc.EncodeKeys(keys)...)
	}
	n.batchedFetches.Inc()
	resp, err := n.client.Call(dst, req)
	if err != nil {
		return 0, group
	}
	items, err := rpc.DecodeItems(resp)
	if err != nil || len(items) != len(group) {
		return 0, group
	}
	// Fan the batch out across the decode pool at prefetch priority: the
	// whole window decompresses in parallel while demand opens still
	// preempt it (they submit at PriOpen and are drained first).
	decoded := make([][]byte, len(items))
	fids := make([]uint8, len(items))
	var wg sync.WaitGroup
	for i := range items {
		it := &items[i]
		if it.Status != rpc.ItemOK || len(it.Payload) < 2 {
			continue
		}
		n.remoteBytes.Add(int64(len(it.Payload)))
		n.creditBytesSaved(group[i].m, int64(len(it.Payload)-2))
		i, t := i, group[i]
		wg.Add(1)
		n.decode.Submit(decomp.PriPrefetch, &wg, func(s *codec.Scratch) {
			data, fid, err := n.decodeObject(s, t.m, binary.LittleEndian.Uint16(it.Payload), it.Payload[2:], level)
			if err == nil {
				decoded[i] = data
				fids[i] = fid
			}
		})
	}
	wg.Wait()
	for i, it := range items {
		t := group[i]
		if it.Status != rpc.ItemOK || len(it.Payload) < 2 || decoded[i] == nil {
			failed = append(failed, t)
			continue
		}
		if n.cache.InsertIdleOwnedFidelity(t.m.Path, decoded[i], fids[i]) {
			staged++
		}
		n.finishFlight(t.m.Path, t.flight, nil)
	}
	return staged, failed
}

// decompress turns a compressed object into file bytes on the shared
// decode pool at the given priority, validating size against the
// metadata record. level is the layer budget for layered objects
// (0/FidelityFull: decode everything the payload carries); the returned
// fidelity reports what the bytes actually reached. The returned buffer
// comes from the decomp buffer pool: ownership passes to the caller, who
// must hand it to the cache via InsertOwned/InsertIdleOwned (or recycle
// it on failure).
func (n *Node) decompress(m *FileMeta, compressorID uint16, comp []byte, pri decomp.Priority, level uint8) ([]byte, uint8, error) {
	var out []byte
	var fid uint8
	var err error
	n.decode.Run(pri, func(s *codec.Scratch) {
		out, fid, err = n.decodeObject(s, m, compressorID, comp, level)
	})
	return out, fid, err
}

// decodeObject is the codec work of one decode job, running on a pool
// worker with its per-worker scratch (or inline with a nil scratch when
// the pool is closed). The latency histogram brackets codec time only —
// queue wait has its own instrument ("decomp.queue.wait.latency").
// Layered objects decode through the container path: any layer prefix
// XORs to a full-length record, so the m.Size check holds at every
// fidelity.
func (n *Node) decodeObject(s *codec.Scratch, m *FileMeta, compressorID uint16, comp []byte, level uint8) ([]byte, uint8, error) {
	start := time.Now()
	tstart := n.tracer.Begin()
	var out []byte
	var err error
	fid := FidelityFull
	if codec.IsLayered(compressorID) {
		maxL := 0
		if level != 0 && level != FidelityFull {
			maxL = int(level)
		}
		var k int
		out, k, err = codec.DecodeLayeredScratch(s, decomp.GetBuf(int(m.Size)), comp, maxL)
		if err == nil {
			n.fidelityHist.Observe(time.Duration(k) * time.Microsecond)
			fid = metaFidelity(m, uint8(k))
		}
	} else {
		cfg, ok := codec.ByID(compressorID)
		if !ok {
			n.tracer.End(trace.OpDecompress, m.Path, trace.OutcomeError, tstart)
			return nil, 0, fmt.Errorf("fanstore: %s: unknown compressor %d", m.Path, compressorID)
		}
		out, err = codec.DecompressScratch(cfg.Codec, s, decomp.GetBuf(int(m.Size)), comp)
	}
	n.decompressHist.Observe(time.Since(start))
	if err != nil {
		decomp.PutBuf(out)
		n.tracer.End(trace.OpDecompress, m.Path, trace.OutcomeError, tstart)
		return nil, 0, fmt.Errorf("fanstore: %s: %w", m.Path, err)
	}
	n.tracer.End(trace.OpDecompress, m.Path, trace.OutcomeNone, tstart)
	if int64(len(out)) != m.Size {
		decomp.PutBuf(out)
		return nil, 0, fmt.Errorf("fanstore: %s: decompressed %d bytes, metadata says %d", m.Path, len(out), m.Size)
	}
	n.decompresses.Inc()
	return out, fid, nil
}

// open produces the decompressed bytes for a metadata record, following
// Fig. 2: cache, then local backend, then remote fetch. Concurrent
// producers of the same uncached file — other opens, or a prefetch
// staging it — share one fetch+decode via singleflight (flight.go): the
// waiter blocks on the leader's flight, then pins the shared cache
// entry. pinned reports whether the returned bytes hold a cache pin the
// caller must Release — false only for the zero-copy passthrough path,
// which never enters the cache. outcome tells the tracer which arm of
// Fig. 2 served the open; an open served by another producer's flight
// reports OutcomeCoalesced.
// level is the open's layer budget (0/FidelityFull: everything); a
// cached entry below the budget's fidelity is a miss, and the producer
// upgrades it in place when a lower-fidelity base is already resident.
func (n *Node) openBytes(m *FileMeta, level uint8) (data []byte, pinned bool, outcome trace.Outcome, err error) {
	want := metaFidelity(m, level)
	coalesced := false
	for {
		if data, _, ok := n.cache.AcquireFidelity(m.Path, want); ok {
			outcome := trace.OutcomeCacheHit
			if coalesced {
				outcome = trace.OutcomeCoalesced
			}
			return data, true, outcome, nil
		}
		f, leader := n.beginFlightFid(m.Path, want)
		if !leader {
			n.fetchCoalesced.Inc()
			coalesced = true
			<-f.done
			if f.err != nil && !errors.Is(f.err, errFlightAbandoned) {
				return nil, false, trace.OutcomeError, f.err
			}
			// The leader's result is in the cache (pinned by an open
			// leader, or staged idle by a prefetch leader); Acquire
			// shares it. If it was abandoned, already evicted (tiny
			// cache), or a lower-fidelity flight than this open needs,
			// loop: the next pass leads its own (upgrade) flight.
			continue
		}
		data, pinned, outcome, err := n.produceBytes(m, level)
		n.finishFlight(m.Path, f, err)
		return data, pinned, outcome, err
	}
}

// produceBytes performs the actual Fig. 2 data path for one file at the
// given layer budget. pinned is false for the zero-copy path (no cache
// entry to release). When a lower-fidelity base is already cached and the
// object is remote, the refinement extents are fetched by byte range and
// XORed onto a copy of the base — the upgrade-in-place path — instead of
// re-fetching the whole prefix.
func (n *Node) produceBytes(m *FileMeta, level uint8) (data []byte, pinned bool, outcome trace.Outcome, err error) {
	n.mu.RLock()
	wdata, written := n.writes[m.Path]
	n.mu.RUnlock()
	switch {
	case written:
		n.localOpens.Inc()
		return n.cache.Insert(m.Path, wdata), true, trace.OutcomeMetaHit, nil
	case n.backend.Contains(m.Path):
		n.localOpens.Inc()
		// Uncompressed RAM-resident objects are served zero-copy from the
		// partition blob: no decompression, no cache footprint (the blob
		// is already resident node-local storage). Counted separately so
		// Stats stays truthful for uncompressed datasets.
		outcome = trace.OutcomeLocal
		if id, raw, ok := n.backend.Peek(m.Path); ok {
			if payload, ok := codec.Passthrough(id, raw); ok {
				n.zeroCopyOpens.Inc()
				return payload, false, trace.OutcomeZeroCopy, nil
			}
		} else {
			// Peek declined: the compressed object lives on the spill
			// backend, so this open pays a disk read.
			outcome = trace.OutcomeSpill
		}
		id, comp, err := n.backend.Get(m.Path)
		if err != nil {
			return nil, false, trace.OutcomeError, err
		}
		// The local payload is whole regardless of budget; the budget
		// still caps decode work (fewer layers XORed).
		data, fid, err := n.decompress(m, id, comp, decomp.PriOpen, level)
		if err != nil {
			return nil, false, trace.OutcomeError, err
		}
		return n.cache.InsertOwnedFidelity(m.Path, data, fid), true, outcome, nil
	default:
		n.remoteOpens.Inc()
		want := metaFidelity(m, level)
		if data, ok := n.upgradeInPlace(m, want); ok {
			return data, true, trace.OutcomeRemoteFetch, nil
		}
		id, comp, outcome, err := n.fetchRemote(m, level)
		if err != nil {
			return nil, false, outcome, err
		}
		data, fid, err := n.decompress(m, id, comp, decomp.PriOpen, level)
		if err != nil {
			return nil, false, trace.OutcomeError, err
		}
		return n.cache.InsertOwnedFidelity(m.Path, data, fid), true, outcome, nil
	}
}

// upgradeInPlace promotes an already-cached lower-fidelity entry to want
// by fetching only the missing refinement extents: the byte range
// [LayerPrefix[have-1], LayerPrefix[want-1]) of the container, each body
// decoded and XORed onto a copy of the cached base. On success the
// upgraded bytes replace the entry and return pinned. Any miss — no base
// cached, no extent table, a range-fetch or decode failure — reports
// ok=false and the caller performs a whole budgeted fetch. Opportunistic
// and lossless: the base entry stays pinned (so untouched and valid)
// until the upgraded copy is built from it.
func (n *Node) upgradeInPlace(m *FileMeta, want uint8) (data []byte, ok bool) {
	L := m.Layers()
	if L == 0 || want < 2 {
		return nil, false // unlayered, or nothing above the base to add
	}
	base, have, okBase := n.cache.AcquireAny(m.Path)
	if !okBase {
		return nil, false
	}
	if have >= want {
		// Raced with another producer that already got there.
		return base, true
	}
	to := int(want)
	if want == FidelityFull || to > L {
		to = L
	}
	from := int(have) // have < want <= FidelityFull and have != FidelityFull ⇒ a real level ≥ 1
	off := int64(m.LayerPrefix[from-1])
	raw, err := n.fetchRemoteRange(m, off, int(int64(m.LayerPrefix[to-1])-off))
	if err != nil {
		n.cache.Release(m.Path)
		return nil, false
	}
	out := decomp.GetBuf(int(m.Size))
	out = append(out, base...)
	n.decode.Run(decomp.PriOpen, func(s *codec.Scratch) {
		plane := decomp.GetBuf(int(m.Size))
		defer decomp.PutBuf(plane)
		for j := from; j < to; j++ {
			lo := int(int64(m.LayerPrefix[j-1]) - off)
			hi := int(int64(m.LayerPrefix[j]) - off)
			plane, err = codec.DecodeLayerBodyScratch(s, plane[:0], raw[lo:hi], int(m.Size))
			if err != nil {
				return
			}
			codec.XORInto(out, plane)
		}
	})
	n.cache.Release(m.Path)
	if err != nil {
		decomp.PutBuf(out)
		return nil, false
	}
	// Relative to a whole full-fidelity fetch: the upgrade skipped both
	// the base prefix it reused from the cache and any layers past want.
	if saved := int64(m.LayerPrefix[L-1]) - int64(len(raw)); saved > 0 {
		n.fetchBytesSaved.Add(saved)
	}
	n.fetchUpgrades.Inc()
	n.fidelityHist.Observe(time.Duration(to) * time.Microsecond)
	return n.cache.InsertOwnedFidelity(m.Path, out, metaFidelity(m, uint8(to))), true
}

// Close shuts the daemon down. It must be called collectively after all
// ranks are done with the namespace (a barrier inside ensures no peer
// still needs this rank's objects). Even when the barrier fails — a peer
// aborted mid-run — the serve loops are still unblocked so Close cannot
// hang on daemon.Wait.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.elastic {
		// An elastic node cannot barrier over the fixed-size world (only
		// a subset of slots are members); it hands shutdown sequencing to
		// the coordinator's bye/ack handshake instead.
		return n.closeElastic()
	}
	_ = n.comm.Barrier()
	// Unblock the daemons unconditionally. On the error path the sends
	// may fail too, but then the world is aborted and the loops exit on
	// their closed mailboxes.
	n.server.Stop()
	_ = n.comm.Send(n.comm.Rank(), tagWriteMeta, nil)
	n.daemon.Wait()
	// With the daemons down no new decode work arrives; the pool drains
	// whatever is queued (stragglers run inline on their submitters).
	n.decode.Close()
	return n.backend.Close()
}

// Stats snapshots the node's data-path counters — a thin view over the
// registry instruments, kept for tests and existing callers.
func (n *Node) Stats() Stats {
	return Stats{
		LocalOpens:         n.localOpens.Value(),
		RemoteOpens:        n.remoteOpens.Value(),
		ZeroCopyOpens:      n.zeroCopyOpens.Value(),
		Decompresses:       n.decompresses.Value(),
		BytesRead:          n.bytesRead.Value(),
		RemoteBytes:        n.remoteBytes.Value(),
		Failovers:          n.failovers.Value(),
		BatchedFetches:     n.batchedFetches.Value(),
		PrefetchedOpens:    n.cache.prefetchedOpens(),
		FetchCoalesced:     n.fetchCoalesced.Value(),
		PrefetchSuppressed: n.prefetchSuppressed.Value(),
		FetchUpgrades:      n.fetchUpgrades.Value(),
		FetchBytesSaved:    n.fetchBytesSaved.Value(),
		Cache:              n.cache.Stats(),
		Daemon:             n.server.Stats(),
		RPC:                n.client.Stats(),
	}
}

// PlanTarget resolves a path for the epoch planner
// (prefetch.PlanStore): its decompressed size, and whether producing it
// requires a remote fetch (neither written locally, backend-resident,
// nor unknown). Unknown paths report (0, false) and plan as free.
func (n *Node) PlanTarget(path string) (size int64, remote bool) {
	cp := cleanPath(path)
	n.mu.RLock()
	m, ok := n.meta[cp]
	_, written := n.writes[cp]
	n.mu.RUnlock()
	if !ok || written {
		return 0, false
	}
	return m.Size, !n.backend.Contains(cp)
}

// SetFidelity sets the node's layer budget for demand opens and default
// prefetches: 0 (or FidelityFull) restores full fidelity, k caps layered
// objects at their first k layers. A fidelity schedule flips it between
// epochs — entries staged at a lower level upgrade in place the first
// time a higher-budget open touches them. Written files and unlayered
// objects are unaffected: they are always exact.
func (n *Node) SetFidelity(level uint8) { n.fidelity.Store(uint32(normalizeFidelity(level))) }

// FidelityLevel reports the node's current layer budget (FidelityFull
// when no budget is set).
func (n *Node) FidelityLevel() uint8 {
	v := n.fidelity.Load()
	if v == 0 {
		return FidelityFull
	}
	return uint8(v)
}

// CacheHeadroom reports the decompressed cache capacity not held down
// by pinned (currently open) entries — the bytes the planner may stage
// into. Unpinned entries count as headroom: they are evictable, so
// staging over them is admission-safe.
func (n *Node) CacheHeadroom() int64 { return n.cache.Headroom() }

// StagedBytes reports the bytes currently staged by prefetch but not
// yet consumed by an open — the quantity the planner's admission rule
// bounds.
func (n *Node) StagedBytes() int64 { return n.cache.StagedBytes() }

// Registry exposes the node's metrics registry (the one passed in
// Options.Metrics, or the private one Mount created). Cluster reports
// snapshot it; CLI flags dump it.
func (n *Node) Registry() *metrics.Registry { return n.reg }

// Tracer exposes the node's span tracer (nil when tracing is disabled).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Rank returns the rank this node runs on.
func (n *Node) Rank() int { return n.comm.Rank() }

// ID returns this node's stable cluster identity. On a static mount it
// equals the rank.
func (n *Node) ID() member.NodeID { return n.selfID }

// View returns the node's cluster-map view (the identity StaticMap on a
// static mount).
func (n *Node) View() *member.View { return n.view }

// MapVersion returns the cluster-map version the node currently routes
// under.
func (n *Node) MapVersion() uint64 { return n.view.Version() }

// NumFiles reports the number of files in the global namespace.
func (n *Node) NumFiles() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.meta)
}

// LocalFiles reports how many objects this rank's backend holds.
func (n *Node) LocalFiles() int { return n.backend.Len() }
