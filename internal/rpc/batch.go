package rpc

import (
	"encoding/binary"
	"fmt"
)

// Multi-object frames. A batched request carries N object keys in one
// round trip and the response carries N independently-statused items, so
// a partial miss (some keys absent from the peer's backend) degrades to
// per-item not-found instead of poisoning the whole batch. The Server
// does not interpret these frames — they ride inside the ordinary
// request/response payloads — but both daemon sides use this encoding,
// so it lives with the wire layer.
//
// Key frame:   u32 count | (u32 len | bytes)*
// Item frame:  u32 count | (u8 status | u32 len | bytes)*

// DefaultBatchItems is the default ceiling on keys per batched call.
// Epoch-scale prefetch plans are split into frames of this many objects:
// large enough to amortize the round trip, small enough that one call
// neither builds a monster frame nor monopolizes a daemon worker.
const DefaultBatchItems = 64

// SplitKeys cuts keys into consecutive plan-sized slices of at most max
// keys each (one slice per batched call). The slices alias the input.
// A non-positive max means no splitting.
func SplitKeys(keys []string, max int) [][]string {
	if len(keys) == 0 {
		return nil
	}
	if max <= 0 || len(keys) <= max {
		return [][]string{keys}
	}
	out := make([][]string, 0, (len(keys)+max-1)/max)
	for len(keys) > max {
		out = append(out, keys[:max])
		keys = keys[max:]
	}
	return append(out, keys)
}

// Per-item statuses of a batched response.
const (
	// ItemOK marks an item whose payload is the requested object.
	ItemOK = byte(0)
	// ItemNotFound marks a key the responder does not hold (the
	// partial-miss case: the caller fails over or fetches on demand).
	ItemNotFound = byte(1)
	// ItemError marks a per-item handler failure; the payload carries
	// the error text.
	ItemError = byte(2)
)

// Item is one object of a batched response.
type Item struct {
	Status  byte
	Payload []byte
}

// EncodeKeys serializes object keys into one batched request payload.
func EncodeKeys(keys []string) []byte {
	n := 4
	for _, k := range keys {
		n += 4 + len(k)
	}
	out := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(out, uint32(len(keys)))
	for _, k := range keys {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(k)))
		out = append(out, l[:]...)
		out = append(out, k...)
	}
	return out
}

// DecodeKeys parses a batched request payload back into object keys.
func DecodeKeys(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rpc: batch key frame truncated (%d bytes)", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	keys := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("rpc: batch key %d: length truncated", i)
		}
		l := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < l {
			return nil, fmt.Errorf("rpc: batch key %d: %d bytes declared, %d remain", i, l, len(p))
		}
		keys = append(keys, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("rpc: batch key frame has %d trailing bytes", len(p))
	}
	return keys, nil
}

// EncodeKeysLevels serializes object keys with a per-item fidelity budget
// (the max layer count a budgeted fetch should return; fanstore's
// FidelityFull sentinel means the whole object). Layout:
// u32 count | (u8 level | u32 len | bytes)*.
func EncodeKeysLevels(keys []string, levels []uint8) []byte {
	n := 4
	for _, k := range keys {
		n += 5 + len(k)
	}
	out := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(out, uint32(len(keys)))
	for i, k := range keys {
		lvl := uint8(0xFF)
		if i < len(levels) {
			lvl = levels[i]
		}
		out = append(out, lvl)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(k)))
		out = append(out, l[:]...)
		out = append(out, k...)
	}
	return out
}

// DecodeKeysLevels parses a leveled batched request payload.
func DecodeKeysLevels(p []byte) ([]string, []uint8, error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("rpc: leveled key frame truncated (%d bytes)", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	keys := make([]string, 0, count)
	levels := make([]uint8, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 5 {
			return nil, nil, fmt.Errorf("rpc: leveled key %d: header truncated", i)
		}
		lvl := p[0]
		l := int(binary.LittleEndian.Uint32(p[1:]))
		p = p[5:]
		if len(p) < l {
			return nil, nil, fmt.Errorf("rpc: leveled key %d: %d bytes declared, %d remain", i, l, len(p))
		}
		keys = append(keys, string(p[:l]))
		levels = append(levels, lvl)
		p = p[l:]
	}
	if len(p) != 0 {
		return nil, nil, fmt.Errorf("rpc: leveled key frame has %d trailing bytes", len(p))
	}
	return keys, levels, nil
}

// EncodeItems serializes a batched response, one status-framed item per
// requested key, in request order.
func EncodeItems(items []Item) []byte {
	n := 4
	for i := range items {
		n += 5 + len(items[i].Payload)
	}
	out := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(out, uint32(len(items)))
	for i := range items {
		out = append(out, items[i].Status)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(items[i].Payload)))
		out = append(out, l[:]...)
		out = append(out, items[i].Payload...)
	}
	return out
}

// DecodeItems parses a batched response payload.
func DecodeItems(p []byte) ([]Item, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("rpc: batch item frame truncated (%d bytes)", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	items := make([]Item, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 5 {
			return nil, fmt.Errorf("rpc: batch item %d: header truncated", i)
		}
		status := p[0]
		l := int(binary.LittleEndian.Uint32(p[1:]))
		p = p[5:]
		if len(p) < l {
			return nil, fmt.Errorf("rpc: batch item %d: %d bytes declared, %d remain", i, l, len(p))
		}
		items = append(items, Item{Status: status, Payload: p[:l]})
		p = p[l:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("rpc: batch item frame has %d trailing bytes", len(p))
	}
	return items, nil
}
