// Package rpc is the FanStore daemon's wire layer: typed request/response
// framing over an mpi.Comm. It factors the transport concerns out of the
// store (§IV-C2, §V-A) so the data path is layered — storage backend
// below, fetch routing above, and this package in between.
//
// A Server answers requests concurrently through a bounded worker pool,
// so one slow handler (a spill read, a large response copy) does not
// head-of-line-block every waiting rank. A Client issues calls with
// per-attempt deadlines and retry/backoff, allocating a unique response
// tag per attempt so late replies can never be mismatched.
//
// Wire format. Request frame, sent to the server's request tag:
//
//	u32 respTag | payload          (len == 0 is the shutdown pill)
//
// Response frame, sent back on respTag:
//
//	u8 status | payload            (payload is the error text on failure)
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fanstore/internal/decomp"
	"fanstore/internal/metrics"
	"fanstore/internal/mpi"
)

// Response status bytes.
const (
	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
	statusStale    = 3
)

// Errors surfaced by Client.Call.
var (
	// ErrNotFound reports the handler had no object for the request.
	// It is terminal: the same peer will keep not having it, so Call
	// does not retry (routing layers fail over to a replica instead).
	ErrNotFound = errors.New("rpc: object not found")
	// ErrRemote wraps a handler-side failure (spill read error, ...).
	ErrRemote = errors.New("rpc: remote handler error")
	// ErrTimeout reports that an attempt exceeded its deadline.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrStale reports a cluster-map version disagreement between caller
	// and handler. Terminal for this call: the caller must refresh its
	// map (and usually its routing metadata) before re-resolving the
	// route — blind retries against the same peer cannot converge.
	ErrStale = errors.New("rpc: stale cluster map")
)

// Handler services one request and returns the response payload.
// Returning an error wrapping ErrNotFound maps to a not-found status,
// one wrapping ErrStale maps to a stale-map status; any other error
// maps to a remote-error status carrying the text.
//
// Buffer ownership: req is only valid for the duration of the call —
// the server recycles the request frame into the shared buffer pool
// once the reply is sent. A successfully returned payload transfers to
// the server, which recycles it after copying it into the response
// frame; it therefore must not alias req or be retained or reused by
// the handler.
type Handler func(src int, req []byte) ([]byte, error)

// ServerOptions configures a Server.
type ServerOptions struct {
	// Workers bounds concurrent handler invocations. 0 means
	// GOMAXPROCS, floored at 4 — fetch handlers block on backend I/O,
	// so even a single-core node benefits from a few in flight.
	Workers int
	// Queue bounds requests accepted but not yet in service
	// (0 means 4x workers, at least 16). A full queue backpressures
	// the receive loop rather than growing without bound.
	Queue int
	// Metrics is the registry the server's instruments live in
	// ("rpc.server.*"). Nil means a private, unexported registry — the
	// counters still work, they just aren't part of a rank-wide
	// snapshot.
	Metrics *metrics.Registry
}

// ServerStats snapshots the daemon-side counters.
type ServerStats struct {
	Served       int64 // requests answered successfully
	NotFound     int64 // requests answered with a not-found status
	Errors       int64 // requests answered with an error status
	QueueDepth   int32 // requests currently waiting for a worker
	MaxQueue     int32 // high-water mark of QueueDepth
	InService    int32 // requests currently inside a handler
	MaxInService int32 // high-water mark of InService
}

// request is one dequeued unit of work. raw is the whole received
// frame (payload aliases it); the worker recycles it after the reply.
type request struct {
	src     int
	respTag int
	payload []byte
	raw     []byte
}

// Server answers requests on one tag of a communicator through a bounded
// worker pool. Start it with Serve (usually in a goroutine); Stop unblocks
// the receive loop and drains the pool. Its counters and gauges are
// registry-backed ("rpc.server.*"); ServerStats remains as a thin view.
type Server struct {
	comm    *mpi.Comm
	tag     int
	handler Handler
	queue   chan request
	wg      sync.WaitGroup // receive loop + workers

	served, notFound, errors *metrics.Counter
	queueDepth, inService    *metrics.Gauge
	serviceHist              *metrics.Histogram // handler + reply time
}

// NewServer builds a server for tag on comm. Call Serve to start it.
func NewServer(comm *mpi.Comm, tag int, handler Handler, opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 4 {
			workers = 4
		}
	}
	depth := opts.Queue
	if depth <= 0 {
		depth = 4 * workers
		if depth < 16 {
			depth = 16
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		comm:        comm,
		tag:         tag,
		handler:     handler,
		queue:       make(chan request, depth),
		served:      reg.Counter("rpc.server.served"),
		notFound:    reg.Counter("rpc.server.notfound"),
		errors:      reg.Counter("rpc.server.errors"),
		queueDepth:  reg.Gauge("rpc.server.queue"),
		inService:   reg.Gauge("rpc.server.inservice"),
		serviceHist: reg.Histogram("rpc.server.service.latency"),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Serve receives requests until the world aborts or a shutdown pill
// (empty frame) arrives, then drains and stops the worker pool. It is
// the replacement for the store's old serial serve loop: requests are
// only parsed here; all handler work happens on the pool.
func (s *Server) Serve() {
	defer func() {
		close(s.queue)
		s.wg.Wait()
	}()
	for {
		data, src, err := s.comm.Recv(mpi.AnySource, s.tag)
		if err != nil {
			return // world aborted or transport closed
		}
		if len(data) == 0 {
			return // shutdown pill from Stop
		}
		if len(data) < 4 {
			continue // malformed frame; nothing to even reply to
		}
		respTag := int(binary.LittleEndian.Uint32(data))
		s.queueDepth.Inc()
		s.queue <- request{src: src, respTag: respTag, payload: data[4:], raw: data}
	}
}

// worker services queued requests until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		s.queueDepth.Dec()
		s.inService.Inc()
		start := time.Now()
		s.answer(req)
		decomp.PutBuf(req.raw)
		s.serviceHist.Observe(time.Since(start))
		s.inService.Dec()
	}
}

// answer runs the handler and sends the status-framed response.
func (s *Server) answer(req request) {
	payload, err := s.handler(req.src, req.payload)
	var resp []byte
	switch {
	case err == nil:
		resp = decomp.GetBuf(1 + len(payload))
		resp = append(resp, statusOK)
		resp = append(resp, payload...)
		// The handler contract transfers payload ownership here; it was
		// copied into resp above and must not alias req.raw.
		decomp.PutBuf(payload)
		s.served.Inc()
	case errors.Is(err, ErrNotFound):
		resp = []byte{statusNotFound}
		s.notFound.Inc()
	case errors.Is(err, ErrStale):
		// The payload carries the handler's map version (if it chose to
		// include one via the error text); status alone is what routing
		// layers branch on.
		msg := err.Error()
		resp = make([]byte, 1, 1+len(msg))
		resp[0] = statusStale
		resp = append(resp, msg...)
		s.errors.Inc()
	default:
		msg := err.Error()
		resp = make([]byte, 1, 1+len(msg))
		resp[0] = statusError
		resp = append(resp, msg...)
		s.errors.Inc()
	}
	// Both transports copy the frame before Send returns, so the
	// response buffer can recycle immediately.
	_ = s.comm.Send(req.src, req.respTag, resp)
	decomp.PutBuf(resp)
}

// Stop unblocks Serve with a self-addressed shutdown pill and waits for
// the pool to drain. It is safe to call even when the world has already
// aborted: the failed pill send is ignored because the aborted mailbox
// unblocks Serve on its own.
func (s *Server) Stop() {
	_ = s.comm.Send(s.comm.Rank(), s.tag, nil)
	s.wg.Wait()
}

// Wait blocks until the receive loop and every worker have exited.
func (s *Server) Wait() { s.wg.Wait() }

// Stats snapshots the server counters — a thin view over the
// registry-backed instruments, kept for existing callers and tests.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Served:       s.served.Value(),
		NotFound:     s.notFound.Value(),
		Errors:       s.errors.Value(),
		QueueDepth:   int32(s.queueDepth.Value()),
		MaxQueue:     int32(s.queueDepth.Max()),
		InService:    int32(s.inService.Value()),
		MaxInService: int32(s.inService.Max()),
	}
}

// ServiceTime snapshots the in-service time histogram (handler + reply).
func (s *Server) ServiceTime() metrics.Snapshot { return s.serviceHist.Snapshot() }

// ClientOptions configures per-call behaviour.
type ClientOptions struct {
	// Timeout bounds each attempt (0 means block until the reply).
	Timeout time.Duration
	// Retries is how many extra attempts follow a timed-out or
	// remote-errored attempt. Not-found, stale-map, and world-abort
	// errors are terminal and never retried.
	Retries int
	// Backoff is the pause before the first retry; it doubles per
	// attempt. 0 means retry immediately.
	Backoff time.Duration
	// Metrics is the registry the client's instruments live in
	// ("rpc.client.*"). Nil means a private registry.
	Metrics *metrics.Registry
}

// ClientStats snapshots the caller-side counters.
type ClientStats struct {
	Calls    int64
	Retries  int64
	Timeouts int64
}

// Client issues framed calls to Servers listening on tag. Each attempt
// allocates a fresh response tag from respBase upward, so a reply that
// arrives after its deadline can never satisfy a later call.
type Client struct {
	comm     *mpi.Comm
	tag      int
	respBase int
	opts     ClientOptions

	seq                      atomic.Int64
	calls, retries, timeouts *metrics.Counter
	attemptHist              *metrics.Histogram // per-attempt round-trip time
}

// NewClient builds a client for servers on tag. respBase is the first of
// a tag range reserved for responses; it must not collide with any other
// tag traffic on the communicator.
func NewClient(comm *mpi.Comm, tag, respBase int, opts ClientOptions) *Client {
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Client{
		comm: comm, tag: tag, respBase: respBase, opts: opts,
		calls:       reg.Counter("rpc.client.calls"),
		retries:     reg.Counter("rpc.client.retries"),
		timeouts:    reg.Counter("rpc.client.timeouts"),
		attemptHist: reg.Histogram("rpc.client.attempt.latency"),
	}
}

// Call sends req to dst and returns the response payload, retrying per
// the client options. The returned error wraps ErrNotFound, ErrRemote,
// or ErrTimeout so routing layers can decide whether to fail over.
func (c *Client) Call(dst int, req []byte) ([]byte, error) {
	c.calls.Inc()
	backoff := c.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		resp, err := c.attempt(dst, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrStale) || errors.Is(err, mpi.ErrAborted) {
			break // terminal: retrying the same peer cannot help
		}
	}
	return nil, lastErr
}

// attempt performs one framed round trip, observing its duration in the
// per-attempt latency histogram (success or failure — a timed-out
// attempt is exactly the sample a stall investigation needs).
func (c *Client) attempt(dst int, req []byte) ([]byte, error) {
	start := time.Now()
	defer metrics.ObserveSince(c.attemptHist, start)
	respTag := c.respBase + int(c.seq.Add(1))
	frame := decomp.GetBuf(4 + len(req))[:4]
	binary.LittleEndian.PutUint32(frame, uint32(respTag))
	frame = append(frame, req...)
	err := c.comm.Send(dst, c.tag, frame)
	decomp.PutBuf(frame) // Send copies; the frame is dead once it returns
	if err != nil {
		return nil, fmt.Errorf("rpc: send to rank %d: %w", dst, err)
	}
	resp, _, err := c.comm.RecvDeadline(dst, respTag, c.opts.Timeout)
	if errors.Is(err, mpi.ErrTimeout) {
		c.timeouts.Inc()
		return nil, fmt.Errorf("%w: rank %d after %v", ErrTimeout, dst, c.opts.Timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("rpc: recv from rank %d: %w", dst, err)
	}
	if len(resp) < 1 {
		return nil, fmt.Errorf("%w: rank %d sent an empty frame", ErrRemote, dst)
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusNotFound:
		return nil, fmt.Errorf("%w: rank %d", ErrNotFound, dst)
	case statusStale:
		return nil, fmt.Errorf("%w: rank %d: %s", ErrStale, dst, resp[1:])
	default:
		return nil, fmt.Errorf("%w: rank %d: %s", ErrRemote, dst, resp[1:])
	}
}

// Stats snapshots the client counters — a thin view over the
// registry-backed instruments.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:    c.calls.Value(),
		Retries:  c.retries.Value(),
		Timeouts: c.timeouts.Value(),
	}
}
