package rpc

import "sync"

// ScatterResult is one destination's outcome from Client.Scatter.
type ScatterResult struct {
	Dst  int    // destination rank
	Resp []byte // response payload on success, nil on error
	Err  error  // nil, or the terminal Call error for this destination
}

// Scatter sends the same request to every destination concurrently and
// waits for all of them. Results are ordered like dsts. Unlike Call,
// per-destination failures are reported in the result slice rather than
// aborting the whole operation — the degraded-read shard gather needs
// whatever subset of a stripe survives, not all-or-nothing.
//
// The request buffer is only read, so sharing it across the concurrent
// sends is safe.
func (c *Client) Scatter(dsts []int, req []byte) []ScatterResult {
	out := make([]ScatterResult, len(dsts))
	var wg sync.WaitGroup
	for i, dst := range dsts {
		out[i].Dst = dst
		wg.Add(1)
		go func(i, dst int) {
			defer wg.Done()
			out[i].Resp, out[i].Err = c.Call(dst, req)
		}(i, dst)
	}
	wg.Wait()
	return out
}
