package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fanstore/internal/mpi"
)

// serveOn starts a server on rank with the handler and returns it; the
// caller stops it after the closing barrier.
func serveOn(c *mpi.Comm, h Handler, opts ServerOptions) *Server {
	s := NewServer(c, 500, h, opts)
	go s.Serve()
	return s
}

func TestCallBasic(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			s := serveOn(c, func(src int, req []byte) ([]byte, error) {
				return append(bytes.ToUpper(req), byte('0'+src)), nil
			}, ServerOptions{})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			st := s.Stats()
			if st.Served != 3 || st.QueueDepth != 0 || st.InService != 0 {
				return fmt.Errorf("server stats %+v", st)
			}
			if s.ServiceTime().Count != 3 {
				return fmt.Errorf("service histogram count %d", s.ServiceTime().Count)
			}
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{})
		for i := 0; i < 3; i++ {
			resp, err := cl.Call(1, []byte("ping"))
			if err != nil {
				return err
			}
			if string(resp) != "PING0" {
				return fmt.Errorf("resp %q", resp)
			}
		}
		if st := cl.Stats(); st.Calls != 3 || st.Retries != 0 {
			return fmt.Errorf("client stats %+v", st)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNotFoundAndRemoteError(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			s := serveOn(c, func(_ int, req []byte) ([]byte, error) {
				switch string(req) {
				case "missing":
					return nil, fmt.Errorf("%w: nope", ErrNotFound)
				case "boom":
					return nil, errors.New("handler exploded")
				}
				return append([]byte(nil), req...), nil
			}, ServerOptions{})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			if st := s.Stats(); st.NotFound != 1 || st.Errors != 1 || st.Served != 1 {
				return fmt.Errorf("server stats %+v", st)
			}
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{})
		if _, err := cl.Call(1, []byte("missing")); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing: %v", err)
		}
		if _, err := cl.Call(1, []byte("boom")); !errors.Is(err, ErrRemote) ||
			!strings.Contains(err.Error(), "handler exploded") {
			return fmt.Errorf("boom: %v", err)
		}
		if resp, err := cl.Call(1, []byte("ok")); err != nil || string(resp) != "ok" {
			return fmt.Errorf("ok: %q %v", resp, err)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStaleStatus checks a handler returning ErrStale surfaces as a
// terminal (non-retried) ErrStale on the caller, carrying the text.
func TestStaleStatus(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			var calls atomic.Int32
			s := serveOn(c, func(_ int, _ []byte) ([]byte, error) {
				calls.Add(1)
				return nil, fmt.Errorf("%w: have v3, got v2", ErrStale)
			}, ServerOptions{})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			if n := calls.Load(); n != 1 {
				return fmt.Errorf("stale call retried: %d handler invocations", n)
			}
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{Retries: 3})
		_, err := cl.Call(1, []byte("read"))
		if !errors.Is(err, ErrStale) || !strings.Contains(err.Error(), "have v3") {
			return fmt.Errorf("stale: %v", err)
		}
		if st := cl.Stats(); st.Retries != 0 {
			return fmt.Errorf("client stats %+v", st)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallDeadline(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		release := make(chan struct{})
		if c.Rank() == 1 {
			s := serveOn(c, func(_ int, req []byte) ([]byte, error) {
				if string(req) == "slow" {
					<-release
				}
				return append([]byte(nil), req...), nil
			}, ServerOptions{Workers: 2})
			if err := c.Barrier(); err != nil {
				return err
			}
			close(release)
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{Timeout: 50 * time.Millisecond})
		if _, err := cl.Call(1, []byte("slow")); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("slow call: %v", err)
		}
		if st := cl.Stats(); st.Timeouts != 1 {
			return fmt.Errorf("client stats %+v", st)
		}
		// A fast call on the same client still works: the stale reply
		// cannot be mismatched because response tags are never reused.
		if resp, err := cl.Call(1, []byte("fast")); err != nil || string(resp) != "fast" {
			return fmt.Errorf("fast call: %q %v", resp, err)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetryBackoff(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			var fails atomic.Int32
			s := serveOn(c, func(_ int, req []byte) ([]byte, error) {
				if fails.Add(1) <= 2 {
					return nil, errors.New("transient")
				}
				return append([]byte(nil), req...), nil
			}, ServerOptions{})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			if st := s.Stats(); st.Errors != 2 || st.Served != 1 {
				return fmt.Errorf("server stats %+v", st)
			}
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{Retries: 3, Backoff: time.Millisecond})
		resp, err := cl.Call(1, []byte("eventually"))
		if err != nil || string(resp) != "eventually" {
			return fmt.Errorf("call: %q %v", resp, err)
		}
		if st := cl.Stats(); st.Retries != 2 {
			return fmt.Errorf("client stats %+v", st)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPoolStress hammers one server from three ranks' concurrent
// callers and checks the pool really runs handlers concurrently (run
// with -race in CI).
func TestWorkerPoolStress(t *testing.T) {
	const ranks, goroutines, calls = 4, 8, 10
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			s := serveOn(c, func(_ int, req []byte) ([]byte, error) {
				time.Sleep(time.Millisecond) // give requests time to pile up
				return append([]byte(nil), req...), nil
			}, ServerOptions{Workers: goroutines})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			st := s.Stats()
			want := int64((ranks - 1) * goroutines * calls)
			if st.Served != want {
				return fmt.Errorf("served %d, want %d", st.Served, want)
			}
			if st.MaxInService <= 1 {
				return fmt.Errorf("pool never ran concurrently: %+v", st)
			}
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{})
		var wg sync.WaitGroup
		errCh := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					req := []byte(fmt.Sprintf("r%d-g%d-i%d", c.Rank(), g, i))
					resp, err := cl.Call(0, req)
					if err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(resp, req) {
						errCh <- fmt.Errorf("resp %q for %q", resp, req)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServerStopOnAbortedWorld checks Stop does not hang after the world
// shut down underneath the server.
func TestServerStopOnAbortedWorld(t *testing.T) {
	boom := errors.New("boom")
	var s *Server
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			s = serveOn(c, func(_ int, req []byte) ([]byte, error) { return append([]byte(nil), req...), nil }, ServerOptions{})
			return boom // aborts the world with the server running
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("world error: %v", err)
	}
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung after world abort")
	}
}
