package rpc

import (
	"bytes"
	"reflect"
	"testing"

	"fanstore/internal/mpi"
)

func TestBatchKeyFrameRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{},
		{""},
		{"a"},
		{"dir/file-000.tif", "dir/file-001.tif", "", "x/y/z"},
	}
	for _, keys := range cases {
		got, err := DecodeKeys(EncodeKeys(keys))
		if err != nil {
			t.Fatalf("%v: %v", keys, err)
		}
		if len(got) != len(keys) {
			t.Fatalf("%v: decoded %d keys", keys, len(got))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("key %d: %q != %q", i, got[i], keys[i])
			}
		}
	}
}

func TestBatchItemFrameRoundTrip(t *testing.T) {
	items := []Item{
		{Status: ItemOK, Payload: []byte("compressed bytes")},
		{Status: ItemNotFound},
		{Status: ItemError, Payload: []byte("spill read failed")},
		{Status: ItemOK, Payload: nil},
	}
	got, err := DecodeItems(EncodeItems(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Status != items[i].Status {
			t.Fatalf("item %d: status %d != %d", i, got[i].Status, items[i].Status)
		}
		if !bytes.Equal(got[i].Payload, items[i].Payload) {
			t.Fatalf("item %d: payload mismatch", i)
		}
	}
}

func TestBatchFrameMalformed(t *testing.T) {
	if _, err := DecodeKeys(nil); err == nil {
		t.Fatal("nil key frame decoded")
	}
	if _, err := DecodeKeys([]byte{9, 0, 0, 0}); err == nil {
		t.Fatal("truncated key frame decoded")
	}
	if _, err := DecodeKeys(append(EncodeKeys([]string{"a"}), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted in key frame")
	}
	if _, err := DecodeItems([]byte{1, 0}); err == nil {
		t.Fatal("truncated item frame decoded")
	}
	if _, err := DecodeItems([]byte{1, 0, 0, 0, ItemOK, 8, 0, 0, 0, 'x'}); err == nil {
		t.Fatal("item with short payload decoded")
	}
	if _, err := DecodeItems(append(EncodeItems([]Item{{Status: ItemOK}}), 0)); err == nil {
		t.Fatal("trailing bytes accepted in item frame")
	}
}

// TestBatchedCallPartialMiss drives a batched frame through a real
// client/server pair: the handler answers per key with OK or not-found,
// and the partial miss comes back as an item status instead of failing
// the call.
func TestBatchedCallPartialMiss(t *testing.T) {
	objects := map[string]string{"a": "alpha", "c": "gamma"}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 1 {
			s := serveOn(c, func(_ int, req []byte) ([]byte, error) {
				keys, err := DecodeKeys(req)
				if err != nil {
					return nil, err
				}
				items := make([]Item, len(keys))
				for i, k := range keys {
					if v, ok := objects[k]; ok {
						items[i] = Item{Status: ItemOK, Payload: []byte(v)}
					} else {
						items[i] = Item{Status: ItemNotFound}
					}
				}
				return EncodeItems(items), nil
			}, ServerOptions{})
			if err := c.Barrier(); err != nil {
				return err
			}
			s.Stop()
			return nil
		}
		cl := NewClient(c, 500, 1<<20, ClientOptions{})
		resp, err := cl.Call(1, EncodeKeys([]string{"a", "b", "c"}))
		if err != nil {
			return err
		}
		items, err := DecodeItems(resp)
		if err != nil {
			return err
		}
		if len(items) != 3 {
			t.Fatalf("got %d items", len(items))
		}
		if items[0].Status != ItemOK || string(items[0].Payload) != "alpha" {
			t.Fatalf("item 0: %+v", items[0])
		}
		if items[1].Status != ItemNotFound {
			t.Fatalf("item 1 (the miss): status %d", items[1].Status)
		}
		if items[2].Status != ItemOK || string(items[2].Payload) != "gamma" {
			t.Fatalf("item 2: %+v", items[2])
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLeveledKeyFrameRoundTrip(t *testing.T) {
	keys := []string{"train/a", "train/b", "", "train/long/path/c"}
	levels := []uint8{1, 2, 0xFF, 3}
	p := EncodeKeysLevels(keys, levels)
	gotKeys, gotLevels, err := DecodeKeysLevels(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotKeys, keys) || !reflect.DeepEqual(gotLevels, levels) {
		t.Fatalf("round trip: %v %v", gotKeys, gotLevels)
	}

	// A short levels slice pads with the full-fidelity sentinel.
	p = EncodeKeysLevels(keys, levels[:1])
	_, gotLevels, err = DecodeKeysLevels(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotLevels[0] != 1 || gotLevels[1] != 0xFF || gotLevels[3] != 0xFF {
		t.Fatalf("padding: %v", gotLevels)
	}

	for _, bad := range [][]byte{nil, {1}, {1, 0, 0, 0, 2}, append(EncodeKeysLevels(keys, levels), 9)} {
		if _, _, err := DecodeKeysLevels(bad); err == nil {
			t.Fatalf("malformed frame %v accepted", bad)
		}
	}
}
