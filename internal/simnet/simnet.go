// Package simnet models interconnect transfer costs for the simulated
// clusters of the evaluation (§VII-A): latency plus size-over-bandwidth
// link timing, and analytic collective models (ring allreduce, allgather)
// used by the training-loop simulator for gradient exchange and by
// FanStore for remote file retrieval cost accounting.
//
// This is the substitution for the paper's physical fabrics: a Mellanox
// FDR InfiniBand (56 Gb/s, sub-microsecond latency) on GTX/V100 and a
// 100 Gb/s Intel Omni-Path fat tree on the CPU cluster. Scaling behaviour
// depends on the latency/bandwidth ratios, which the profiles preserve.
package simnet

import "time"

// Link describes one interconnect profile.
type Link struct {
	Name string
	// Latency is the one-way message latency.
	Latency time.Duration
	// BandwidthMBps is the per-link bandwidth in MB/s.
	BandwidthMBps float64
}

// The evaluation fabrics (§VII-A).
var (
	// FDRInfiniband: 56 Gb/s, sub-microsecond latency (GTX and V100).
	FDRInfiniband = Link{Name: "FDR InfiniBand", Latency: 900 * time.Nanosecond, BandwidthMBps: 7000}
	// OmniPath: 100 Gb/s fat tree (the 512-node CPU cluster).
	OmniPath = Link{Name: "Omni-Path", Latency: 1100 * time.Nanosecond, BandwidthMBps: 12500}
)

// Transfer returns the time to move size bytes point-to-point.
func (l Link) Transfer(size int64) time.Duration {
	return l.Latency + time.Duration(float64(size)/(l.BandwidthMBps*1e6)*float64(time.Second))
}

// Allreduce models a ring allreduce of size bytes across n ranks:
// 2(n-1) steps, each moving size/n bytes, as used for gradient averaging
// in data-parallel training (§II-A).
func (l Link) Allreduce(size int64, n int) time.Duration {
	if n <= 1 {
		return 0
	}
	steps := 2 * (n - 1)
	chunk := float64(size) / float64(n)
	per := float64(l.Latency) + chunk/(l.BandwidthMBps*1e6)*float64(time.Second)
	return time.Duration(float64(steps) * per)
}

// Allgather models a ring allgather where each rank contributes size
// bytes: n-1 steps each moving size bytes (FanStore's metadata exchange).
func (l Link) Allgather(size int64, n int) time.Duration {
	if n <= 1 {
		return 0
	}
	per := float64(l.Latency) + float64(size)/(l.BandwidthMBps*1e6)*float64(time.Second)
	return time.Duration(float64(n-1) * per)
}

// RingShift models every rank forwarding size bytes to its neighbor at
// once (FanStore's extra-partition replication, §V-D). The ring topology
// makes the transfers contention-free, so the cost is a single transfer
// regardless of n.
func (l Link) RingShift(size int64) time.Duration {
	return l.Transfer(size)
}
