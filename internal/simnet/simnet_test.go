package simnet

import (
	"testing"
	"time"
)

func TestTransfer(t *testing.T) {
	l := Link{Latency: time.Microsecond, BandwidthMBps: 1000}
	// 1 MB at 1000 MB/s = 1 ms, plus 1 us latency.
	got := l.Transfer(1_000_000)
	want := time.Millisecond + time.Microsecond
	if got != want {
		t.Fatalf("Transfer = %v, want %v", got, want)
	}
	if z := l.Transfer(0); z != time.Microsecond {
		t.Fatalf("zero-byte transfer = %v, want latency only", z)
	}
}

func TestAllreduceScaling(t *testing.T) {
	l := FDRInfiniband
	const size = 100 << 20 // 100 MB of gradients (ResNet-50 scale)
	if d := l.Allreduce(size, 1); d != 0 {
		t.Fatalf("single-rank allreduce should be free, got %v", d)
	}
	t4 := l.Allreduce(size, 4)
	t64 := l.Allreduce(size, 64)
	if t4 <= 0 || t64 <= t4 {
		t.Fatalf("allreduce must grow with ranks: %v vs %v", t4, t64)
	}
	// Ring allreduce moves 2(n-1)/n of the data: the bandwidth term is
	// bounded by 2x a point-to-point transfer as n grows.
	bound := 3 * l.Transfer(size)
	if t64 > bound {
		t.Fatalf("allreduce(64) = %v exceeds ring bound %v", t64, bound)
	}
	// Latency term dominates growth from 64 to 512 for small messages.
	small512 := l.Allreduce(1024, 512)
	small64 := l.Allreduce(1024, 64)
	if small512 <= small64 {
		t.Fatal("latency term must grow with rank count")
	}
}

func TestAllgatherAndRing(t *testing.T) {
	l := OmniPath
	if d := l.Allgather(4096, 1); d != 0 {
		t.Fatalf("single-rank allgather should be free, got %v", d)
	}
	if l.Allgather(4096, 8) >= l.Allgather(4096, 512) {
		t.Fatal("allgather must grow with ranks")
	}
	// Ring shift cost is independent of rank count (contention-free).
	if l.RingShift(1<<20) != l.Transfer(1<<20) {
		t.Fatal("ring shift should cost one transfer")
	}
}

func TestFabricProfiles(t *testing.T) {
	// OPA is the faster fabric; both have sub-2us latency per §VII-A.
	if OmniPath.BandwidthMBps <= FDRInfiniband.BandwidthMBps {
		t.Fatal("OPA should out-bandwidth FDR IB")
	}
	for _, l := range []Link{FDRInfiniband, OmniPath} {
		if l.Latency <= 0 || l.Latency >= 2*time.Microsecond {
			t.Fatalf("%s latency %v outside sub-microsecond class", l.Name, l.Latency)
		}
	}
}
