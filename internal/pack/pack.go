// Package pack implements FanStore's compressed data representation
// (Table I of the paper) and the data preparation tool that produces it
// (§V-B).
//
// A dataset is split into partitions. Each partition is a flat blob:
//
//	num_files  4 bytes
//	then per file:
//	  file path   256 bytes (NUL padded)
//	  compressor    2 bytes (codec registry ID)
//	  stat        144 bytes (fixed layout, see Stat)
//	  size          8 bytes (compressed data length)
//	  data          variable
//
// Partitions are written once to the shared filesystem and loaded to
// node-local storage at training start (§IV-C1). Small files concatenated
// into partitions also stop wasting filesystem blocks, which is why the
// paper's Tokamak dataset compresses 6.5x as a packed partition versus
// 2.6x as individual files (§VII-E2).
package pack

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"fanstore/internal/codec"
)

// Layout constants from Table I.
const (
	PathLen    = 256
	StatLen    = 144
	headerLen  = 4
	entryFixed = PathLen + 2 + StatLen + 8
)

// Stat is the fixed 144-byte per-file metadata record of the compressed
// representation. It carries what a POSIX stat() of the original file
// returns plus an integrity checksum of the uncompressed payload
// (entropy-coded streams cannot always detect their own truncation).
// The remaining bytes of the 144 are reserved padding.
type Stat struct {
	Size  int64  // uncompressed size in bytes
	Mode  uint32 // file mode bits
	MTime int64  // modification time, Unix nanoseconds
	CRC32 uint32 // IEEE CRC of the uncompressed payload
}

// marshal writes the stat into a 144-byte region.
func (s Stat) marshal(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(s.Size))
	binary.LittleEndian.PutUint32(dst[8:], s.Mode)
	binary.LittleEndian.PutUint64(dst[12:], uint64(s.MTime))
	binary.LittleEndian.PutUint32(dst[20:], s.CRC32)
	for i := 24; i < StatLen; i++ {
		dst[i] = 0
	}
}

func unmarshalStat(src []byte) Stat {
	return Stat{
		Size:  int64(binary.LittleEndian.Uint64(src[0:])),
		Mode:  binary.LittleEndian.Uint32(src[8:]),
		MTime: int64(binary.LittleEndian.Uint64(src[12:])),
		CRC32: binary.LittleEndian.Uint32(src[20:]),
	}
}

// Entry is one file inside a partition.
type Entry struct {
	Path         string
	CompressorID uint16
	Stat         Stat
	Data         []byte // compressed payload (subslice of the partition blob)
	// Offset is the payload's position within the partition blob, for
	// backends that keep partitions on disk and read payloads on demand.
	Offset int64
}

// Decompress returns the file's original bytes, verifying the CRC.
// Layered entries decode at full fidelity here; fidelity-budgeted decodes
// are the fetch plane's job (codec.DecodeLayered on a container prefix).
func (e *Entry) Decompress(dst []byte) ([]byte, error) {
	start := len(dst)
	var out []byte
	var err error
	if codec.IsLayered(e.CompressorID) {
		out, _, err = codec.DecodeLayered(dst, e.Data, 0)
	} else {
		cfg, ok := codec.ByID(e.CompressorID)
		if !ok {
			return dst, fmt.Errorf("pack: %s: unknown compressor id %d", e.Path, e.CompressorID)
		}
		out, err = cfg.Codec.Decompress(dst, e.Data)
	}
	if err != nil {
		return dst, fmt.Errorf("pack: %s: %w", e.Path, err)
	}
	body := out[start:]
	if int64(len(body)) != e.Stat.Size {
		return dst, fmt.Errorf("pack: %s: decompressed %d bytes, stat says %d", e.Path, len(body), e.Stat.Size)
	}
	if crc := crc32.ChecksumIEEE(body); crc != e.Stat.CRC32 {
		return dst, fmt.Errorf("pack: %s: CRC mismatch (%08x != %08x)", e.Path, crc, e.Stat.CRC32)
	}
	return out, nil
}

// LayerIndex parses the sub-object extent table of a layered entry: the
// per-layer (offset, length) ranges within Data that let the fetch plane
// request byte ranges instead of the whole payload. Non-layered entries
// return ok=false.
func (e *Entry) LayerIndex() (codec.LayerIndex, bool, error) {
	if !codec.IsLayered(e.CompressorID) {
		return codec.LayerIndex{}, false, nil
	}
	ix, err := codec.ParseLayerIndex(e.Data)
	if err != nil {
		return codec.LayerIndex{}, true, fmt.Errorf("pack: %s: %w", e.Path, err)
	}
	return ix, true, nil
}

// Partition is a parsed partition blob. Entries reference subslices of
// the blob; the blob must outlive them.
type Partition struct {
	Entries []Entry
}

// Marshal serializes entries into a partition blob.
func Marshal(entries []Entry) ([]byte, error) {
	size := headerLen
	for i := range entries {
		size += entryFixed + len(entries[i].Data)
	}
	out := make([]byte, headerLen, size)
	binary.LittleEndian.PutUint32(out, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		if len(e.Path) >= PathLen {
			return nil, fmt.Errorf("pack: path %q exceeds %d bytes", e.Path, PathLen-1)
		}
		var fixed [entryFixed]byte
		copy(fixed[:PathLen], e.Path)
		binary.LittleEndian.PutUint16(fixed[PathLen:], e.CompressorID)
		e.Stat.marshal(fixed[PathLen+2 : PathLen+2+StatLen])
		binary.LittleEndian.PutUint64(fixed[PathLen+2+StatLen:], uint64(len(e.Data)))
		out = append(out, fixed[:]...)
		out = append(out, e.Data...)
	}
	return out, nil
}

// Parse reads a partition blob. Entry.Data aliases blob.
func Parse(blob []byte) (*Partition, error) {
	if len(blob) < headerLen {
		return nil, fmt.Errorf("pack: partition truncated (%d bytes)", len(blob))
	}
	n := int(binary.LittleEndian.Uint32(blob))
	// The declared count is untrusted: bound the preallocation by the
	// maximum number of entries the blob could physically hold.
	maxPossible := (len(blob) - headerLen) / entryFixed
	if n > maxPossible {
		return nil, fmt.Errorf("pack: declared %d entries but blob holds at most %d", n, maxPossible)
	}
	p := &Partition{Entries: make([]Entry, 0, n)}
	off := headerLen
	for i := 0; i < n; i++ {
		if off+entryFixed > len(blob) {
			return nil, fmt.Errorf("pack: entry %d header truncated", i)
		}
		fixed := blob[off : off+entryFixed]
		path := cString(fixed[:PathLen])
		if path == "" {
			return nil, fmt.Errorf("pack: entry %d has empty path", i)
		}
		compressor := binary.LittleEndian.Uint16(fixed[PathLen:])
		st := unmarshalStat(fixed[PathLen+2 : PathLen+2+StatLen])
		dataLen := binary.LittleEndian.Uint64(fixed[PathLen+2+StatLen:])
		off += entryFixed
		if dataLen > uint64(len(blob)-off) {
			return nil, fmt.Errorf("pack: entry %d (%s) data truncated: need %d, have %d", i, path, dataLen, len(blob)-off)
		}
		p.Entries = append(p.Entries, Entry{
			Path:         path,
			CompressorID: compressor,
			Stat:         st,
			Data:         blob[off : off+int(dataLen) : off+int(dataLen)],
			Offset:       int64(off),
		})
		off += int(dataLen)
	}
	if off != len(blob) {
		return nil, fmt.Errorf("pack: %d trailing bytes after %d entries", len(blob)-off, n)
	}
	return p, nil
}

func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
