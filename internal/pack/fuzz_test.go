package pack

import "testing"

// FuzzParse feeds arbitrary blobs to the partition parser: it must reject
// or parse without panicking, and never alias out of bounds.
func FuzzParse(f *testing.F) {
	blob, _ := Marshal(nil)
	f.Add(blob)
	if b, err := Build([]InputFile{{Path: "a", Data: []byte("hello world")}},
		BuildOptions{Partitions: 1, Compressor: "lz4"}); err == nil {
		f.Add(b.Scatter[0])
	}
	if b, err := Build([]InputFile{{Path: "b", Data: []byte("layered fuzz seed payload")}},
		BuildOptions{Partitions: 1, Compressor: "lz4", Layers: 3}); err == nil {
		f.Add(b.Scatter[0])
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		p, err := Parse(blob)
		if err != nil {
			return
		}
		for i := range p.Entries {
			// Decompress may fail (CRC); it must not panic — including
			// layered entries with a fuzzed extent table.
			p.Entries[i].Decompress(nil)
			p.Entries[i].LayerIndex()
		}
	})
}
