package pack

import (
	"encoding/binary"
	"fmt"
)

// Erasure shard framing. A partition blob (the Table I format of
// pack.go) is the erasure stripe: the store splits it into k data
// shards plus m parity shards (internal/ec) and scatters the framed
// shards across the cluster. Every frame is self-describing and
// self-delimiting, so a fetch response can concatenate any number of
// shards and the receiver can validate geometry and stripe integrity
// (blob size + CRC) before attempting a reconstruction.
//
// Frame layout, little-endian:
//
//	u64 gid | u8 index | u8 k | u8 m | u64 blobSize | u32 blobCRC |
//	u32 payloadLen | payload
const shardHeaderLen = 8 + 1 + 1 + 1 + 8 + 4 + 4

// ShardHeader describes one erasure-coded shard of a partition blob.
type ShardHeader struct {
	GID      uint64 // cluster-wide partition id
	Index    uint8  // 0..K-1 data, K..K+M-1 parity
	K, M     uint8  // stripe geometry
	BlobSize uint64 // whole-blob length, for unpadding after Join
	BlobCRC  uint32 // IEEE CRC32 of the whole blob (reconstruction check)
}

// Shard is one parsed frame. Data aliases the parsed buffer.
type Shard struct {
	Header ShardHeader
	Data   []byte
}

// MarshalShard appends one framed shard to dst and returns it.
func MarshalShard(dst []byte, h ShardHeader, data []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], h.GID)
	dst = append(dst, b[:]...)
	dst = append(dst, h.Index, h.K, h.M)
	binary.LittleEndian.PutUint64(b[:], h.BlobSize)
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], h.BlobCRC)
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(data)))
	dst = append(dst, b[:4]...)
	return append(dst, data...)
}

// ShardFrameLen is the framed size of a shard with a payload of n bytes.
func ShardFrameLen(n int) int { return shardHeaderLen + n }

// ParseShard decodes the first frame of src, returning the shard and
// the remaining bytes. The shard's Data aliases src.
func ParseShard(src []byte) (Shard, []byte, error) {
	if len(src) < shardHeaderLen {
		return Shard{}, nil, fmt.Errorf("pack: shard frame truncated (%d bytes)", len(src))
	}
	h := ShardHeader{
		GID:      binary.LittleEndian.Uint64(src),
		Index:    src[8],
		K:        src[9],
		M:        src[10],
		BlobSize: binary.LittleEndian.Uint64(src[11:]),
		BlobCRC:  binary.LittleEndian.Uint32(src[19:]),
	}
	n := int(binary.LittleEndian.Uint32(src[23:]))
	if n < 0 || shardHeaderLen+n > len(src) {
		return Shard{}, nil, fmt.Errorf("pack: shard payload truncated (want %d, have %d)", n, len(src)-shardHeaderLen)
	}
	if h.K == 0 || int(h.Index) >= int(h.K)+int(h.M) {
		return Shard{}, nil, fmt.Errorf("pack: shard %d/%d+%d: bad geometry", h.Index, h.K, h.M)
	}
	return Shard{Header: h, Data: src[shardHeaderLen : shardHeaderLen+n]}, src[shardHeaderLen+n:], nil
}

// ParseShards decodes a concatenation of shard frames (possibly empty).
func ParseShards(src []byte) ([]Shard, error) {
	var out []Shard
	for len(src) > 0 {
		sh, rest, err := ParseShard(src)
		if err != nil {
			return nil, err
		}
		out = append(out, sh)
		src = rest
	}
	return out, nil
}
