package pack

import (
	"fmt"
	"hash/crc32"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fanstore/internal/codec"
)

// InputFile is one source file handed to the data preparation tool.
type InputFile struct {
	Path string
	Data []byte
	// Broadcast marks the file for replication to every node (the
	// paper's broadcast directory for validation data, §V-B).
	Broadcast bool
}

// BuildOptions configures the data preparation tool (§V-B): data path
// semantics are handled by the caller; here we take the file list, the
// partition count, and the compressor.
type BuildOptions struct {
	// Partitions is the number of scatter partitions to produce.
	Partitions int
	// Compressor is the codec configuration name (or paper alias) used
	// for every file. Files that do not shrink are stored raw, with the
	// per-file compressor field recording "store".
	Compressor string
	// Workers bounds the compression threads; 0 means GOMAXPROCS.
	Workers int
	// BroadcastDirs lists path prefixes whose files are replicated to
	// every node instead of scattered (validation data).
	BroadcastDirs []string
	// Layers >= 2 switches every file to the progressive layered
	// container (codec.EncodeLayered): a base layer plus Layers-1
	// refinements, each compressed with Compressor, so readers can fetch
	// a fidelity-k byte prefix instead of the whole payload.
	Layers int
	// LayerScheme selects the layer split (codec.LayerBits default;
	// codec.LayerFloat quantizes float32 payloads with an SZ base layer).
	LayerScheme codec.LayerScheme
	// FloatBound is the SZ error bound for LayerFloat bases (0 = default).
	FloatBound float64
}

// Bundle is the output of the data preparation tool: scatter partitions
// (each loaded by one node) and a broadcast partition replicated to all.
type Bundle struct {
	// Scatter holds the serialized scatter partition blobs.
	Scatter [][]byte
	// Broadcast is the serialized broadcast partition (nil if empty).
	Broadcast []byte
	// RawBytes and PackedBytes summarize the achieved compression.
	RawBytes    int64
	PackedBytes int64
}

// Ratio reports the dataset-level compression ratio achieved.
func (b *Bundle) Ratio() float64 {
	if b.PackedBytes == 0 {
		return 1
	}
	return float64(b.RawBytes) / float64(b.PackedBytes)
}

// Build runs the multi-threaded data preparation tool over the input
// list: it compresses every file with the requested codec (keeping raw
// bytes when compression does not help), assigns scattered files to
// partitions round-robin, and serializes each partition (§V-B).
func Build(files []InputFile, opts BuildOptions) (*Bundle, error) {
	if opts.Partitions <= 0 {
		return nil, fmt.Errorf("pack: partition count %d", opts.Partitions)
	}
	cfg, ok := codec.ByName(opts.Compressor)
	if !ok {
		return nil, fmt.Errorf("pack: unknown compressor %q", opts.Compressor)
	}
	store := codec.MustGet("store")

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	entries := make([]Entry, len(files))
	broadcast := make([]bool, len(files))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	// Each worker processes an interleaved slice of the file list — the
	// round-robin chunk assignment of §V-B.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(files); i += workers {
				f := files[i]
				var comp []byte
				var id uint16
				var err error
				if opts.Layers >= 2 {
					// Layered entries keep the container even when it is
					// larger than the raw file: the point is the cheap
					// base-layer prefix, not the full-fidelity ratio.
					comp, err = codec.EncodeLayered(nil, f.Data, codec.LayerOptions{
						Layers:     opts.Layers,
						Scheme:     opts.LayerScheme,
						Codecs:     []string{opts.Compressor},
						FloatBound: opts.FloatBound,
					})
					if err != nil {
						errs[w] = fmt.Errorf("pack: layer %s: %w", f.Path, err)
						return
					}
					id = codec.LayeredID
				} else {
					comp, err = cfg.Codec.Compress(nil, f.Data)
					if err != nil {
						errs[w] = fmt.Errorf("pack: compress %s: %w", f.Path, err)
						return
					}
					id = cfg.ID
					if len(comp) >= len(f.Data) {
						// Compression did not help (e.g. ImageNet JPEGs):
						// store raw so decode cost is a memcpy.
						if comp, err = store.Codec.Compress(comp[:0], f.Data); err != nil {
							errs[w] = err
							return
						}
						id = store.ID
					}
				}
				entries[i] = Entry{
					Path:         f.Path,
					CompressorID: id,
					Stat: Stat{
						Size:  int64(len(f.Data)),
						Mode:  0o644,
						MTime: time.Unix(0, 0).UnixNano(),
						CRC32: crc32.ChecksumIEEE(f.Data),
					},
					Data: comp,
				}
				broadcast[i] = f.Broadcast || inDirs(f.Path, opts.BroadcastDirs)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	bundle := &Bundle{}
	parts := make([][]Entry, opts.Partitions)
	var bcast []Entry
	scatterIdx := 0
	for i := range entries {
		bundle.RawBytes += entries[i].Stat.Size
		if broadcast[i] {
			bcast = append(bcast, entries[i])
			continue
		}
		p := scatterIdx % opts.Partitions
		parts[p] = append(parts[p], entries[i])
		scatterIdx++
	}
	// Serialize every partition (and the broadcast set) concurrently on
	// the same bounded worker budget as compression: Marshal is a large
	// sequential copy per partition — each preallocates its blob from the
	// summed entry sizes — and running them one at a time leaves a serial
	// tail on the build.
	jobs := make([][]Entry, 0, len(parts)+1)
	jobs = append(jobs, parts...)
	if len(bcast) > 0 {
		jobs = append(jobs, bcast)
	}
	blobs := make([][]byte, len(jobs))
	merrs := make([]error, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			for i := w; i < len(jobs); i += workers {
				blobs[i], merrs[i] = Marshal(jobs[i])
			}
		}(w)
	}
	mwg.Wait()
	for _, err := range merrs {
		if err != nil {
			return nil, err
		}
	}
	for _, blob := range blobs[:len(parts)] {
		bundle.Scatter = append(bundle.Scatter, blob)
		bundle.PackedBytes += int64(len(blob))
	}
	if len(bcast) > 0 {
		blob := blobs[len(parts)]
		bundle.Broadcast = blob
		bundle.PackedBytes += int64(len(blob))
	}
	return bundle, nil
}

func inDirs(path string, dirs []string) bool {
	for _, d := range dirs {
		d = strings.TrimSuffix(d, "/")
		if d != "" && strings.HasPrefix(path, d+"/") {
			return true
		}
	}
	return false
}

// SortedPaths returns every path in the bundle's partitions, sorted.
// It exists for tests and for the prep tool's manifest output.
func SortedPaths(blobs ...[]byte) ([]string, error) {
	var out []string
	for _, blob := range blobs {
		if len(blob) == 0 {
			continue
		}
		p, err := Parse(blob)
		if err != nil {
			return nil, err
		}
		for i := range p.Entries {
			out = append(out, p.Entries[i].Path)
		}
	}
	sort.Strings(out)
	return out, nil
}
