package pack

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
)

func TestShardFrameRoundTrip(t *testing.T) {
	payload := make([]byte, 777)
	rand.New(rand.NewSource(1)).Read(payload)
	h := ShardHeader{
		GID:      0xdeadbeef00000003,
		Index:    5,
		K:        4,
		M:        2,
		BlobSize: 12345,
		BlobCRC:  crc32.ChecksumIEEE(payload),
	}
	frame := MarshalShard(nil, h, payload)
	if len(frame) != ShardFrameLen(len(payload)) {
		t.Fatalf("frame len %d, want %d", len(frame), ShardFrameLen(len(payload)))
	}
	sh, rest, err := ParseShard(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if sh.Header != h {
		t.Fatalf("header mismatch: got %+v want %+v", sh.Header, h)
	}
	if !bytes.Equal(sh.Data, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestShardFrameConcat(t *testing.T) {
	var frame []byte
	for i := 0; i < 6; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 10+i)
		frame = MarshalShard(frame, ShardHeader{GID: 9, Index: uint8(i), K: 4, M: 2, BlobSize: 100}, data)
	}
	shards, err := ParseShards(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 6 {
		t.Fatalf("got %d shards, want 6", len(shards))
	}
	for i, sh := range shards {
		if int(sh.Header.Index) != i || len(sh.Data) != 10+i || sh.Data[0] != byte(i+1) {
			t.Fatalf("shard %d parsed wrong: %+v", i, sh.Header)
		}
	}
	// Empty input parses to an empty set, not an error.
	if got, err := ParseShards(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty parse: %v, %d shards", err, len(got))
	}
}

func TestShardFrameTruncation(t *testing.T) {
	frame := MarshalShard(nil, ShardHeader{GID: 1, Index: 0, K: 2, M: 1, BlobSize: 8}, []byte("abcdefgh"))
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := ParseShard(frame[:len(frame)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	// Bad geometry: index outside k+m, and k == 0.
	bad := MarshalShard(nil, ShardHeader{GID: 1, Index: 7, K: 4, M: 2}, []byte("x"))
	if _, _, err := ParseShard(bad); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	bad = MarshalShard(nil, ShardHeader{GID: 1, Index: 0, K: 0, M: 2}, []byte("x"))
	if _, _, err := ParseShard(bad); err == nil {
		t.Fatal("k=0 geometry accepted")
	}
}
