package pack

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fanstore/internal/codec"
	"fanstore/internal/dataset"
)

func sampleEntries(t *testing.T, n int) []Entry {
	t.Helper()
	g := dataset.Generator{Kind: dataset.Language, Seed: 9, Size: 4 << 10}
	cfg := codec.MustGet("lz4hc-9")
	var entries []Entry
	for i := 0; i < n; i++ {
		data := g.Bytes(i)
		comp, err := cfg.Codec.Compress(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, Entry{
			Path:         fmt.Sprintf("lang/f%03d.txt", i),
			CompressorID: cfg.ID,
			Stat:         statOf(data),
			Data:         comp,
		})
	}
	return entries
}

func statOf(data []byte) Stat {
	return Stat{Size: int64(len(data)), Mode: 0o644, CRC32: crc32.ChecksumIEEE(data)}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	entries := sampleEntries(t, 7)
	blob, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(p.Entries), len(entries))
	}
	for i := range entries {
		got, want := p.Entries[i], entries[i]
		if got.Path != want.Path || got.CompressorID != want.CompressorID ||
			got.Stat != want.Stat || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("entry %d mismatch", i)
		}
		orig, err := got.Decompress(nil)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(orig)) != got.Stat.Size {
			t.Fatalf("entry %d: decompressed %d bytes", i, len(orig))
		}
	}
}

func TestMarshalEmptyPartition(t *testing.T) {
	blob, err := Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 0 {
		t.Fatalf("want empty partition, got %d entries", len(p.Entries))
	}
}

func TestPathTooLong(t *testing.T) {
	entries := []Entry{{Path: strings.Repeat("x", PathLen)}}
	if _, err := Marshal(entries); err == nil {
		t.Fatal("overlong path should fail")
	}
}

func TestParseRejectsCorrupt(t *testing.T) {
	entries := sampleEntries(t, 3)
	blob, err := Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"header only":    blob[:4],
		"mid header":     blob[:4+PathLen/2],
		"mid data":       blob[:len(blob)-10],
		"trailing bytes": append(append([]byte(nil), blob...), 1, 2, 3),
	}
	for name, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: Parse accepted corrupt blob", name)
		}
	}
	// Corrupting compressed bytes must surface at Decompress via CRC.
	mut := append([]byte(nil), blob...)
	mut[len(mut)-20] ^= 0xff
	p, err := Parse(mut)
	if err != nil {
		return // also acceptable: structural detection
	}
	for i := range p.Entries {
		if _, err := p.Entries[i].Decompress(nil); err != nil {
			return
		}
	}
	t.Error("bit flip in payload escaped both Parse and Decompress CRC")
}

// TestParseQuick fuzzes Parse with random blobs: it must never panic and
// never return entries aliasing out-of-range memory.
func TestParseQuick(t *testing.T) {
	f := func(blob []byte) bool {
		p, err := Parse(blob)
		if err != nil {
			return true
		}
		for i := range p.Entries {
			e := &p.Entries[i]
			if len(e.Path) >= PathLen {
				return false
			}
			_ = e.Data
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildScattersAndBroadcasts(t *testing.T) {
	var files []InputFile
	for i := 0; i < 20; i++ {
		files = append(files, InputFile{
			Path: fmt.Sprintf("train/f%02d.txt", i),
			Data: bytes.Repeat([]byte(fmt.Sprintf("sample %d ", i)), 200),
		})
	}
	for i := 0; i < 4; i++ {
		files = append(files, InputFile{
			Path: fmt.Sprintf("val/f%02d.txt", i),
			Data: bytes.Repeat([]byte("validation "), 100),
		})
	}
	bundle, err := Build(files, BuildOptions{
		Partitions:    4,
		Compressor:    "lz4hc",
		Workers:       3,
		BroadcastDirs: []string{"val"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Scatter) != 4 {
		t.Fatalf("got %d scatter partitions", len(bundle.Scatter))
	}
	if bundle.Broadcast == nil {
		t.Fatal("broadcast partition missing")
	}
	paths, err := SortedPaths(append(bundle.Scatter, bundle.Broadcast)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(files) {
		t.Fatalf("bundle has %d files, want %d", len(paths), len(files))
	}
	bp, err := Parse(bundle.Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Entries) != 4 {
		t.Fatalf("broadcast partition has %d entries, want 4", len(bp.Entries))
	}
	for _, e := range bp.Entries {
		if !strings.HasPrefix(e.Path, "val/") {
			t.Fatalf("scatter file %s leaked into broadcast", e.Path)
		}
	}
	// Partition sizes stay balanced under round-robin assignment.
	for i, blob := range bundle.Scatter {
		p, err := Parse(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Entries) != 5 {
			t.Fatalf("partition %d has %d entries, want 5", i, len(p.Entries))
		}
	}
	if bundle.Ratio() < 2 {
		t.Fatalf("repetitive text should compress >= 2x, got %.2f", bundle.Ratio())
	}
}

func TestBuildStoresIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 32<<10)
	rng.Read(data)
	bundle, err := Build([]InputFile{{Path: "noise.bin", Data: data}}, BuildOptions{
		Partitions: 1,
		Compressor: "lzma",
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(bundle.Scatter[0])
	if err != nil {
		t.Fatal(err)
	}
	storeID := codec.MustGet("store").ID
	if p.Entries[0].CompressorID != storeID {
		t.Fatalf("incompressible file should fall back to store, got id %d", p.Entries[0].CompressorID)
	}
	got, err := p.Entries[0].Decompress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored payload mismatch")
	}
}

func TestBuildEveryDatasetRoundTrips(t *testing.T) {
	for _, k := range dataset.Kinds() {
		g := dataset.Generator{Kind: k, Seed: 5, Size: 16 << 10}
		files := make([]InputFile, 8)
		want := make(map[string][]byte)
		for i := range files {
			f := g.File(i, len(files))
			files[i] = InputFile{Path: f.Path, Data: f.Data}
			want[f.Path] = f.Data
		}
		bundle, err := Build(files, BuildOptions{Partitions: 3, Compressor: "lzsse8"})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		for _, blob := range bundle.Scatter {
			p, err := Parse(blob)
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			for i := range p.Entries {
				got, err := p.Entries[i].Decompress(nil)
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				if !bytes.Equal(got, want[p.Entries[i].Path]) {
					t.Fatalf("%s: %s corrupted in round trip", k, p.Entries[i].Path)
				}
				delete(want, p.Entries[i].Path)
			}
		}
		if len(want) != 0 {
			t.Fatalf("%s: %d files missing from bundle", k, len(want))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, BuildOptions{Partitions: 0, Compressor: "lz4"}); err == nil {
		t.Error("zero partitions should fail")
	}
	if _, err := Build(nil, BuildOptions{Partitions: 1, Compressor: "nope"}); err == nil {
		t.Error("unknown compressor should fail")
	}
}
