package pack

import (
	"bytes"
	"testing"

	"fanstore/internal/codec"
)

// TestBuildLayered covers the layered data-prep path: entries carry the
// LayeredID sentinel, decompress at full fidelity to the exact original,
// and expose a sub-object extent table for byte-range fetches.
func TestBuildLayered(t *testing.T) {
	files := []InputFile{
		{Path: "train/a", Data: bytes.Repeat([]byte("abcdefgh"), 512)},
		{Path: "train/b", Data: make([]byte, 4096)},
		{Path: "train/c", Data: []byte("tiny")},
	}
	b, err := Build(files, BuildOptions{Partitions: 2, Compressor: "lz4", Layers: 3})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string][]byte{}
	for _, f := range files {
		byPath[f.Path] = f.Data
	}
	seen := 0
	for _, blob := range b.Scatter {
		p, err := Parse(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Entries {
			e := &p.Entries[i]
			seen++
			if !codec.IsLayered(e.CompressorID) {
				t.Fatalf("%s: compressor id %d, want layered sentinel", e.Path, e.CompressorID)
			}
			out, err := e.Decompress(nil)
			if err != nil {
				t.Fatalf("%s: %v", e.Path, err)
			}
			if !bytes.Equal(out, byPath[e.Path]) {
				t.Fatalf("%s: full-fidelity decode differs", e.Path)
			}
			ix, layered, err := e.LayerIndex()
			if err != nil || !layered {
				t.Fatalf("%s: LayerIndex layered=%v err=%v", e.Path, layered, err)
			}
			if ix.Layers() != 3 || ix.PrefixSize(3) != len(e.Data) {
				t.Fatalf("%s: layers=%d prefix(3)=%d len=%d", e.Path, ix.Layers(), ix.PrefixSize(3), len(e.Data))
			}
			if ix.PrefixSize(1) >= len(e.Data) {
				t.Fatalf("%s: base layer prefix %d is not shorter than the container %d", e.Path, ix.PrefixSize(1), len(e.Data))
			}
			// A fidelity-1 prefix decodes to a full-length record.
			base, k, err := codec.DecodeLayered(nil, e.Data[:ix.PrefixSize(1)], 0)
			if err != nil || k != 1 || int64(len(base)) != e.Stat.Size {
				t.Fatalf("%s: base decode k=%d len=%d err=%v", e.Path, k, len(base), err)
			}
		}
	}
	if seen != len(files) {
		t.Fatalf("saw %d entries, want %d", seen, len(files))
	}

	// Non-layered entries report layered=false with no error.
	plain, err := Build(files[:1], BuildOptions{Partitions: 1, Compressor: "lz4"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(plain.Scatter[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, layered, err := p.Entries[0].LayerIndex(); layered || err != nil {
		t.Fatalf("plain entry: layered=%v err=%v", layered, err)
	}
}
