package member

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"fanstore/internal/mpi"
	"fanstore/internal/obs"
)

// Membership protocol tags. They live below the fanstore daemon tags
// (1000+) and far below the rpc response range (1<<20+), so all three
// protocols share one communicator.
const (
	tagMemberReq = 900 // member -> coordinator: join/leave/sync requests
	tagMemberAck = 901 // coordinator -> member: request replies
	tagMemberMap = 902 // coordinator -> members: map broadcasts
)

// Request ops (first byte of a tagMemberReq frame).
const (
	opJoin  = byte(1) // body: none; reply: i32 assigned id | map
	opLeave = byte(2) // body: i32 id; reply: map
	opSync  = byte(3) // body: none; reply: map
)

// ackTimeout bounds every member-side wait for a coordinator reply, so
// a dead or wedged coordinator turns Join/Sync/Leave into errors
// instead of hangs.
const ackTimeout = 30 * time.Second

// Coordinator owns the cluster map: it serializes mutations, bumps the
// version on every change, and broadcasts the new map to all alive
// members. One coordinator runs per cluster (on the rank the drivers
// agree on, conventionally rank 0) — the AIStore-style primary proxy
// shape, minus the election, which the roadmap leaves for a later PR.
type Coordinator struct {
	comm *mpi.Comm
	view *View

	mu     sync.Mutex
	cur    *ClusterMap
	nextID NodeID

	wg sync.WaitGroup

	events *obs.EventLog // nil unless the ops plane is enabled
}

// Membership is one node's handle on the elastic cluster: its stable ID,
// the live map view (fed by coordinator broadcasts), and the request
// path back to the coordinator. The coordinator's own Membership answers
// requests locally.
type Membership struct {
	id        NodeID
	comm      *mpi.Comm
	coordRank int
	view      *View
	coord     *Coordinator // non-nil on the coordinator rank

	wg     sync.WaitGroup
	closed sync.Once

	events *obs.EventLog // nil unless the ops plane is enabled
}

// SetEvents attaches an ops-plane event log: the coordinator reports
// joins and leaves as it admits them; a member reports each map
// version it installs from a broadcast. nil (the default) keeps the
// membership protocol event-free at zero cost. Call before traffic —
// the listener reads the field without synchronization.
func (m *Membership) SetEvents(ev *obs.EventLog) {
	m.events = ev
	if m.coord != nil {
		m.coord.events = ev
	}
}

// StartCoordinator creates the cluster with this rank as coordinator and
// first member (ID 0, version 1) and starts the request serve loop. The
// returned Membership is the coordinator's own handle; Close it when the
// cluster shuts down.
func StartCoordinator(comm *mpi.Comm) *Membership {
	cur := &ClusterMap{Version: 1, Nodes: []Node{{ID: 0, Rank: comm.Rank(), State: StateAlive}}}
	c := &Coordinator{comm: comm, cur: cur, nextID: 1, view: NewView(cur)}
	c.wg.Add(1)
	go c.serve()
	return &Membership{id: 0, comm: comm, coordRank: comm.Rank(), view: c.view, coord: c}
}

// Join admits this rank to the cluster run by the coordinator rank and
// returns its Membership: assigned NodeID, current map, and a listener
// keeping the view fresh from map broadcasts.
func Join(comm *mpi.Comm, coordRank int) (*Membership, error) {
	if err := comm.Send(coordRank, tagMemberReq, []byte{opJoin}); err != nil {
		return nil, fmt.Errorf("member: join: %w", err)
	}
	resp, _, err := comm.RecvDeadline(coordRank, tagMemberAck, ackTimeout)
	if err != nil {
		return nil, fmt.Errorf("member: join: %w", err)
	}
	if len(resp) < 4 {
		return nil, fmt.Errorf("member: join: short reply")
	}
	id := NodeID(int32(binary.LittleEndian.Uint32(resp)))
	m, err := DecodeMap(resp[4:])
	if err != nil {
		return nil, fmt.Errorf("member: join: %w", err)
	}
	mem := &Membership{id: id, comm: comm, coordRank: coordRank, view: NewView(m)}
	mem.wg.Add(1)
	go mem.listen()
	return mem, nil
}

// listen applies map broadcasts to the view until the world closes or a
// poison pill (a self-addressed empty frame from Close) arrives.
func (m *Membership) listen() {
	defer m.wg.Done()
	for {
		data, _, err := m.comm.Recv(mpi.AnySource, tagMemberMap)
		if err != nil || len(data) == 0 {
			return
		}
		if cm, err := DecodeMap(data); err == nil {
			if m.view.Update(cm) && m.events.Enabled() {
				m.events.Emitf(obs.EvMapChange, obs.SevInfo,
					"cluster map v%d installed from broadcast (%d members)", cm.Version, len(cm.Nodes))
			}
		}
	}
}

// ID returns this node's stable identity.
func (m *Membership) ID() NodeID { return m.id }

// View returns the live map view.
func (m *Membership) View() *View { return m.view }

// CoordRank returns the coordinator's transport rank.
func (m *Membership) CoordRank() int { return m.coordRank }

// IsCoordinator reports whether this membership runs the coordinator.
func (m *Membership) IsCoordinator() bool { return m.coord != nil }

// Transport returns the membership-aware transport over this node's
// communicator and view.
func (m *Membership) Transport() *Transport {
	return &Transport{comm: m.comm, view: m.view}
}

// Sync pulls the coordinator's current map, updates the view, and
// returns it — the refresh a StaleMapError asks for.
func (m *Membership) Sync() (*ClusterMap, error) {
	if m.coord != nil {
		return m.view.Map(), nil
	}
	if err := m.comm.Send(m.coordRank, tagMemberReq, []byte{opSync}); err != nil {
		return nil, fmt.Errorf("member: sync: %w", err)
	}
	resp, _, err := m.comm.RecvDeadline(m.coordRank, tagMemberAck, ackTimeout)
	if err != nil {
		return nil, fmt.Errorf("member: sync: %w", err)
	}
	cm, err := DecodeMap(resp)
	if err != nil {
		return nil, fmt.Errorf("member: sync: %w", err)
	}
	m.view.Update(cm)
	return m.view.Map(), nil
}

// Leave removes this node from the map (coordinator broadcast included)
// and stops the listener. The caller must have drained its data first —
// the map does not move partitions, the store's rebalance does.
func (m *Membership) Leave() error {
	if m.coord != nil {
		return fmt.Errorf("member: the coordinator cannot leave its own cluster")
	}
	var body [5]byte
	body[0] = opLeave
	binary.LittleEndian.PutUint32(body[1:], uint32(m.id))
	if err := m.comm.Send(m.coordRank, tagMemberReq, body[:]); err != nil {
		return fmt.Errorf("member: leave: %w", err)
	}
	resp, _, err := m.comm.RecvDeadline(m.coordRank, tagMemberAck, ackTimeout)
	if err != nil {
		return fmt.Errorf("member: leave: %w", err)
	}
	if cm, err := DecodeMap(resp); err == nil {
		m.view.Update(cm)
	}
	m.Close()
	return nil
}

// Close stops the listener (members) or the serve loop (coordinator).
// Idempotent; safe after a world abort.
func (m *Membership) Close() {
	m.closed.Do(func() {
		if m.coord != nil {
			_ = m.comm.Send(m.comm.Rank(), tagMemberReq, nil)
			m.coord.wg.Wait()
			return
		}
		_ = m.comm.Send(m.comm.Rank(), tagMemberMap, nil)
		m.wg.Wait()
	})
}

// serve is the coordinator's request loop: joins, leaves, and syncs are
// serialized here, so every map mutation is totally ordered and each
// broadcast carries a strictly newer version.
func (c *Coordinator) serve() {
	defer c.wg.Done()
	for {
		data, src, err := c.comm.Recv(mpi.AnySource, tagMemberReq)
		if err != nil || len(data) == 0 {
			return
		}
		switch data[0] {
		case opJoin:
			id, m := c.admit(src)
			if c.events.Enabled() {
				c.events.Emitf(obs.EvMemberJoin, obs.SevInfo,
					"node %v joined at rank %d (map v%d, %d members)", id, src, m.Version, len(m.Nodes))
			}
			reply := make([]byte, 4, 4+12)
			binary.LittleEndian.PutUint32(reply, uint32(id))
			_ = c.comm.Send(src, tagMemberAck, append(reply, m.Encode()...))
			c.broadcast(m, src)
		case opLeave:
			if len(data) < 5 {
				// Malformed: reply anyway (with the unchanged map) so the
				// requester's blocked Recv never wedges on a protocol error.
				_ = c.comm.Send(src, tagMemberAck, c.view.Map().Encode())
				continue
			}
			id := NodeID(int32(binary.LittleEndian.Uint32(data[1:])))
			m := c.remove(id)
			if c.events.Enabled() {
				c.events.Emitf(obs.EvMemberLeave, obs.SevInfo,
					"node %v left (map v%d, %d members)", id, m.Version, len(m.Nodes))
			}
			_ = c.comm.Send(src, tagMemberAck, m.Encode())
			c.broadcast(m, src)
		case opSync:
			_ = c.comm.Send(src, tagMemberAck, c.view.Map().Encode())
		default:
			// Every tagMemberReq gets a tagMemberAck; an unknown op is
			// answered with the current map rather than dropped.
			_ = c.comm.Send(src, tagMemberAck, c.view.Map().Encode())
		}
	}
}

// admit adds a new alive member and publishes the bumped map.
func (c *Coordinator) admit(rank int) (NodeID, *ClusterMap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	m := c.cur.Clone()
	m.Version++
	m.Nodes = append(m.Nodes, Node{ID: id, Rank: rank, State: StateAlive})
	m.normalize()
	c.cur = m
	c.view.Update(m)
	return id, m
}

// remove drops a member and publishes the bumped map.
func (c *Coordinator) remove(id NodeID) *ClusterMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.cur.Clone()
	m.Version++
	for i, n := range m.Nodes {
		if n.ID == id {
			m.Nodes = append(m.Nodes[:i], m.Nodes[i+1:]...)
			break
		}
	}
	c.cur = m
	c.view.Update(m)
	return m
}

// Advance bumps the map version without changing membership — the
// placement-commit hook: a rebalance publishes its new ownership table
// under the version this returns, so stale readers are detectable by
// version alone. Unlike join/leave mutations the bumped map is NOT
// broadcast here: the caller must deliver it atomically with the
// rewritten ownership records (the store's ctrlCommit frame does).
// A bare broadcast would let a reader observe the new version while
// still routing on old metadata — a version-matched miss the stale-map
// retry could not tell from a genuinely missing object.
// Coordinator-only.
func (m *Membership) Advance() (*ClusterMap, error) {
	if m.coord == nil {
		return nil, fmt.Errorf("member: Advance is coordinator-only")
	}
	c := m.coord
	c.mu.Lock()
	cm := c.cur.Clone()
	cm.Version++
	c.cur = cm
	c.view.Update(cm)
	c.mu.Unlock()
	return cm, nil
}

// SetState publishes a state change for one member (e.g. StateLeaving
// while its partitions drain). Coordinator-only.
func (m *Membership) SetState(id NodeID, s State) (*ClusterMap, error) {
	if m.coord == nil {
		return nil, fmt.Errorf("member: SetState is coordinator-only")
	}
	c := m.coord
	c.mu.Lock()
	cm := c.cur.Clone()
	cm.Version++
	for i := range cm.Nodes {
		if cm.Nodes[i].ID == id {
			cm.Nodes[i].State = s
		}
	}
	c.cur = cm
	c.view.Update(cm)
	c.mu.Unlock()
	c.broadcast(cm, -1)
	return cm, nil
}

// broadcast sends the map to every alive member except the coordinator
// itself and skip (the requester, which got it in its ack). Best-effort:
// an unreachable member learns the version on its next request or from a
// peer's stale-map error.
func (c *Coordinator) broadcast(m *ClusterMap, skipRank int) {
	frame := m.Encode()
	self := c.comm.Rank()
	for _, n := range m.Nodes {
		if n.Rank == self || n.Rank == skipRank || n.State == StateDead {
			continue
		}
		_ = c.comm.Send(n.Rank, tagMemberMap, frame)
	}
}

// Transport is the membership-aware wrapper over an mpi communicator:
// peers are dialed by stable NodeID, resolved through the current map at
// call time. A route that cannot resolve surfaces a typed, retryable
// StaleMapError instead of a hard failure.
type Transport struct {
	comm *mpi.Comm
	view *View
}

// NewTransport wraps comm with the given view (the static-world case
// uses NewView(StaticMap(size))).
func NewTransport(comm *mpi.Comm, view *View) *Transport {
	return &Transport{comm: comm, view: view}
}

// Resolve maps a node ID to its transport rank under the current map.
func (t *Transport) Resolve(id NodeID) (int, error) { return t.view.Resolve(id) }

// Version returns the map version routes are currently resolved under.
func (t *Transport) Version() uint64 { return t.view.Version() }

// View returns the transport's map view.
func (t *Transport) View() *View { return t.view }

// Send delivers data to the node with the given ID.
func (t *Transport) Send(id NodeID, tag int, data []byte) error {
	rank, err := t.Resolve(id)
	if err != nil {
		return err
	}
	return t.comm.Send(rank, tag, data)
}
