package member

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fanstore/internal/mpi"
)

func TestMapEncodeDecodeRoundtrip(t *testing.T) {
	m := &ClusterMap{Version: 42, Nodes: []Node{
		{ID: 0, Rank: 0, State: StateAlive},
		{ID: 3, Rank: 2, State: StateJoining},
		{ID: 7, Rank: 5, State: StateLeaving},
		{ID: 9, Rank: 1, State: StateDead},
	}}
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	for i, n := range got.Nodes {
		if n != m.Nodes[i] {
			t.Fatalf("node %d: %+v vs %+v", i, n, m.Nodes[i])
		}
	}
	if _, err := DecodeMap(m.Encode()[:10]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestRankOfStaleAndDead(t *testing.T) {
	m := &ClusterMap{Version: 5, Nodes: []Node{
		{ID: 1, Rank: 0, State: StateAlive},
		{ID: 2, Rank: 1, State: StateDead},
	}}
	if r, err := m.RankOf(1); err != nil || r != 0 {
		t.Fatalf("RankOf(1) = %d, %v", r, err)
	}
	for _, id := range []NodeID{2, 99} {
		_, err := m.RankOf(id)
		if !errors.Is(err, ErrStaleMap) {
			t.Fatalf("RankOf(%d): want ErrStaleMap, got %v", id, err)
		}
		var se *StaleMapError
		if !errors.As(err, &se) || !se.Retryable() || se.Have != 5 {
			t.Fatalf("RankOf(%d): bad typed error %v", id, err)
		}
	}
}

func TestViewMonotonicUpdate(t *testing.T) {
	v := NewView(StaticMap(2))
	if v.Version() != 1 {
		t.Fatalf("static version %d", v.Version())
	}
	if v.Update(&ClusterMap{Version: 1}) {
		t.Fatal("equal version installed")
	}
	if !v.Update(&ClusterMap{Version: 3, Nodes: []Node{{ID: 0, Rank: 0, State: StateAlive}}}) {
		t.Fatal("newer version rejected")
	}
	if v.Update(&ClusterMap{Version: 2}) {
		t.Fatal("older version installed after newer")
	}
	if v.Version() != 3 {
		t.Fatalf("version %d after updates", v.Version())
	}
}

// TestJoinLeaveLifecycle runs a coordinator and three members through
// join, broadcast convergence, sync, and leave — concurrently, under the
// race detector in `make ci`.
func TestJoinLeaveLifecycle(t *testing.T) {
	const ranks = 4
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			mem := StartCoordinator(c)
			defer mem.Close()
			if mem.ID() != 0 || !mem.IsCoordinator() {
				return fmt.Errorf("coordinator identity wrong: %d", mem.ID())
			}
			// Wait until every member has joined and one has left.
			for {
				m, err := mem.Sync()
				if err != nil {
					return err
				}
				if m.Version >= 5 && len(m.Alive()) == ranks-1 {
					break
				}
			}
			// Placement-commit bump: version advances with no member change.
			before := mem.View().Version()
			cm, err := mem.Advance()
			if err != nil {
				return err
			}
			if cm.Version != before+1 {
				return fmt.Errorf("advance: %d -> %d", before, cm.Version)
			}
			return nil
		}
		mem, err := Join(c, 0)
		if err != nil {
			return err
		}
		if mem.ID() == 0 {
			return fmt.Errorf("member got coordinator id")
		}
		if _, ok := mem.View().Map().Lookup(mem.ID()); !ok {
			return fmt.Errorf("own id %d missing from joined map", mem.ID())
		}
		if rank, err := mem.Transport().Resolve(0); err != nil || rank != 0 {
			return fmt.Errorf("resolve coordinator: %d, %v", rank, err)
		}
		if c.Rank() == 3 {
			// Join then immediately leave: survivors must converge on a
			// map without this node.
			if err := mem.Leave(); err != nil {
				return err
			}
			if _, err := mem.View().Resolve(mem.ID()); !errors.Is(err, ErrStaleMap) {
				return fmt.Errorf("left node still resolves")
			}
			return nil
		}
		defer mem.Close()
		// Converge: broadcasts must eventually show 3 alive members
		// (coordinator + ranks 1, 2) once rank 3 left. Sync as fallback
		// since broadcast order vs. our join is not deterministic.
		for {
			m, err := mem.Sync()
			if err != nil {
				return err
			}
			if m.Version >= 5 && len(m.Alive()) == ranks-1 {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMalformedRequestStillAcked sends protocol garbage on the request
// tag: the coordinator must answer every tagMemberReq (here with the
// unchanged map) so a buggy or truncated frame can never leave the
// requester wedged in its Recv.
func TestMalformedRequestStillAcked(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			mem := StartCoordinator(c)
			defer mem.Close()
			for {
				m, err := mem.Sync()
				if err != nil {
					return err
				}
				if len(m.Alive()) == 2 {
					break
				}
			}
			// Hold the cluster open until the member is done probing.
			_, _, err := c.Recv(1, 777)
			return err
		}
		mem, err := Join(c, 0)
		if err != nil {
			return err
		}
		defer mem.Close()
		for _, frame := range [][]byte{
			{opLeave},       // truncated: no node id
			{opLeave, 0xff}, // still short of the 4-byte id
			{0x7f},          // unknown op
		} {
			if err := c.Send(0, tagMemberReq, frame); err != nil {
				return err
			}
			resp, _, err := c.RecvDeadline(0, tagMemberAck, 5*time.Second)
			if err != nil {
				return fmt.Errorf("frame %v: no ack: %w", frame, err)
			}
			m, err := DecodeMap(resp)
			if err != nil {
				return fmt.Errorf("frame %v: ack not a map: %w", frame, err)
			}
			if len(m.Alive()) != 2 {
				return fmt.Errorf("frame %v: malformed request mutated the map: %+v", frame, m)
			}
		}
		return c.Send(0, 777, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJoins hammers the coordinator with simultaneous joins:
// IDs must be unique and the final map must hold everyone.
func TestConcurrentJoins(t *testing.T) {
	const ranks = 6
	var mu sync.Mutex
	ids := map[NodeID]int{}
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			mem := StartCoordinator(c)
			defer mem.Close()
			for {
				m, err := mem.Sync()
				if err != nil {
					return err
				}
				if len(m.Alive()) == ranks {
					return nil
				}
			}
		}
		mem, err := Join(c, 0)
		if err != nil {
			return err
		}
		defer mem.Close()
		mu.Lock()
		ids[mem.ID()]++
		mu.Unlock()
		for {
			m, err := mem.Sync()
			if err != nil {
				return err
			}
			if len(m.Alive()) == ranks {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != ranks-1 {
		t.Fatalf("%d unique ids for %d joiners: %v", len(ids), ranks-1, ids)
	}
	for id, n := range ids {
		if n != 1 {
			t.Fatalf("id %d assigned %d times", id, n)
		}
	}
}
