// Package member turns the static rank world into an elastic cluster:
// a coordinator-maintained, monotonically versioned ClusterMap decouples
// stable node identities from transport ranks, so nodes can join and
// leave at runtime while every peer keeps resolving routes from a local,
// RAM-resident map — the same property the paper's Allgather'd metadata
// table provides for file metadata (§IV-C1), extended to membership.
//
// The map only ever moves forward: every mutation (join, leave, state
// change, placement commit) bumps Version. Join/leave/state changes are
// broadcast to all alive members; a placement commit (Advance) instead
// hands the bumped map to the caller, which must distribute it
// atomically with the ownership records placed under it. A peer
// observing a version disagreement surfaces it as a typed, retryable
// StaleMapError; the caller refreshes its map (Sync) and retries
// instead of failing or burning a failover.
package member

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID is a stable cluster-wide node identity. Unlike a rank it never
// changes while the node is a member, and it is never reused within one
// cluster's lifetime, so metadata stamped with an owner NodeID stays
// unambiguous across joins and leaves.
type NodeID int32

// NoNode is the zero routing target (e.g. an unplaced partition).
const NoNode NodeID = -1

// State is a node's lifecycle position in the map.
type State uint8

const (
	// StateJoining marks a node admitted to the map but not yet serving
	// data (its partitions are still rebalancing toward it).
	StateJoining State = iota
	// StateAlive marks a full member: it serves its partitions and
	// participates in placement.
	StateAlive
	// StateLeaving marks a member draining out: it still serves reads,
	// but placement no longer assigns it partitions.
	StateLeaving
	// StateDead marks a member that stopped responding; routes to it
	// resolve as stale so callers fail over or refresh.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateAlive:
		return "alive"
	case StateLeaving:
		return "leaving"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Node is one member of the cluster map.
type Node struct {
	ID    NodeID
	Rank  int // transport address (mpi rank / slot)
	State State
}

// ClusterMap is the versioned membership view. It is immutable once
// published: mutations clone, bump Version, and re-broadcast, so readers
// holding a *ClusterMap never observe a torn update.
type ClusterMap struct {
	Version uint64
	Nodes   []Node // sorted by ID
}

// ErrStaleMap is the target StaleMapError matches with errors.Is.
var ErrStaleMap = errors.New("member: stale cluster map")

// StaleMapError reports a cluster-map version disagreement: the caller
// routed (or a peer answered) under a map version that no longer reflects
// the cluster. It is retryable by design — refresh the map and redo the
// route resolution.
type StaleMapError struct {
	Have uint64 // the version the failing side held
	Want uint64 // the version the other side held (0 when unknown)
}

// Error renders the version disagreement.
func (e *StaleMapError) Error() string {
	if e.Want == 0 {
		return fmt.Sprintf("member: stale cluster map (have v%d)", e.Have)
	}
	return fmt.Sprintf("member: stale cluster map (have v%d, peer at v%d)", e.Have, e.Want)
}

// Is makes errors.Is(err, ErrStaleMap) match.
func (e *StaleMapError) Is(target error) bool { return target == ErrStaleMap }

// Retryable marks the error as safe to retry after a map refresh.
func (e *StaleMapError) Retryable() bool { return true }

// Lookup returns the node with the given ID.
func (m *ClusterMap) Lookup(id NodeID) (Node, bool) {
	i := sort.Search(len(m.Nodes), func(i int) bool { return m.Nodes[i].ID >= id })
	if i < len(m.Nodes) && m.Nodes[i].ID == id {
		return m.Nodes[i], true
	}
	return Node{}, false
}

// RankOf resolves a node ID to its transport rank. Unknown or dead nodes
// resolve to a StaleMapError: either the caller's map is behind (the node
// joined since) or ahead of its metadata (the node left since) — both are
// fixed by a refresh, not a retry against the same route.
func (m *ClusterMap) RankOf(id NodeID) (int, error) {
	n, ok := m.Lookup(id)
	if !ok || n.State == StateDead {
		return -1, &StaleMapError{Have: m.Version}
	}
	return n.Rank, nil
}

// Alive returns the members that serve data (alive or draining out).
func (m *ClusterMap) Alive() []Node {
	out := make([]Node, 0, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.State == StateAlive || n.State == StateLeaving {
			out = append(out, n)
		}
	}
	return out
}

// Clone returns a deep copy ready for mutation.
func (m *ClusterMap) Clone() *ClusterMap {
	return &ClusterMap{Version: m.Version, Nodes: append([]Node(nil), m.Nodes...)}
}

// normalize keeps Nodes sorted by ID (the Lookup invariant).
func (m *ClusterMap) normalize() {
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].ID < m.Nodes[j].ID })
}

// Encode serializes the map for broadcast:
//
//	u64 version | u32 count | count x (i32 id | u32 rank | u8 state)
func (m *ClusterMap) Encode() []byte {
	out := make([]byte, 0, 12+9*len(m.Nodes))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], m.Version)
	out = append(out, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(m.Nodes)))
	out = append(out, b[:4]...)
	for _, n := range m.Nodes {
		binary.LittleEndian.PutUint32(b[:4], uint32(n.ID))
		out = append(out, b[:4]...)
		binary.LittleEndian.PutUint32(b[:4], uint32(n.Rank))
		out = append(out, b[:4]...)
		out = append(out, byte(n.State))
	}
	return out
}

// DecodeMap parses an encoded cluster map.
func DecodeMap(src []byte) (*ClusterMap, error) {
	if len(src) < 12 {
		return nil, fmt.Errorf("member: map frame truncated")
	}
	m := &ClusterMap{Version: binary.LittleEndian.Uint64(src)}
	n := int(binary.LittleEndian.Uint32(src[8:]))
	off := 12
	if n > (len(src)-off)/9 {
		return nil, fmt.Errorf("member: map frame declares %d nodes", n)
	}
	m.Nodes = make([]Node, 0, n)
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, Node{
			ID:    NodeID(int32(binary.LittleEndian.Uint32(src[off:]))),
			Rank:  int(binary.LittleEndian.Uint32(src[off+4:])),
			State: State(src[off+8]),
		})
		off += 9
	}
	m.normalize()
	return m, nil
}

// StaticMap builds the fixed-world map: NodeID i is rank i, all alive,
// version 1. It is what a classic collective Mount runs under — every
// elastic code path degenerates to today's behaviour on it.
func StaticMap(size int) *ClusterMap {
	m := &ClusterMap{Version: 1, Nodes: make([]Node, size)}
	for i := range m.Nodes {
		m.Nodes[i] = Node{ID: NodeID(i), Rank: i, State: StateAlive}
	}
	return m
}

// View is a node's atomically swappable handle on the current map.
// Readers load the pointer once per operation and route consistently
// against that version; Update only ever installs newer maps, so late or
// duplicated broadcasts are harmless.
type View struct {
	cur atomic.Pointer[ClusterMap]
}

// NewView starts a view at the given map.
func NewView(m *ClusterMap) *View {
	v := &View{}
	v.cur.Store(m)
	return v
}

// Map returns the current map (never nil).
func (v *View) Map() *ClusterMap { return v.cur.Load() }

// Version returns the current map version.
func (v *View) Version() uint64 { return v.cur.Load().Version }

// Update installs m if it is newer than the current map, reporting
// whether it was installed. Concurrency-safe; monotonic by construction.
func (v *View) Update(m *ClusterMap) bool {
	for {
		cur := v.cur.Load()
		if m.Version <= cur.Version {
			return false
		}
		if v.cur.CompareAndSwap(cur, m) {
			return true
		}
	}
}

// Resolve maps a node ID to its transport rank under the current map.
func (v *View) Resolve(id NodeID) (int, error) { return v.Map().RankOf(id) }
