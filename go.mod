module fanstore

go 1.22
