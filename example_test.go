package fanstore_test

import (
	"fmt"
	"log"
	"time"

	"fanstore"
)

// Example shows the end-to-end flow: pack a dataset, mount it across
// ranks, and read through the POSIX-style surface.
func Example() {
	// Pack two files into one compressed partition (normally done once,
	// by cmd/fanstore-prep, on the shared filesystem).
	bundle, err := fanstore.Pack([]fanstore.InputFile{
		{Path: "data/a.bin", Data: []byte("first training sample")},
		{Path: "data/b.bin", Data: []byte("second training sample")},
	}, fanstore.BuildOptions{Partitions: 1, Compressor: "lzsse8"})
	if err != nil {
		log.Fatal(err)
	}

	// One rank mounts it and reads.
	err = fanstore.Run(1, func(c *fanstore.Comm) error {
		node, err := fanstore.Mount(c, bundle.Scatter, nil, fanstore.Options{})
		if err != nil {
			return err
		}
		defer node.Close()
		entries, err := node.ReadDir("data")
		if err != nil {
			return err
		}
		data, err := node.ReadFile("data/" + entries[0].Name)
		if err != nil {
			return err
		}
		fmt.Printf("%d files; a.bin holds %q\n", len(entries), data)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: 2 files; a.bin holds "first training sample"
}

// ExampleSelectCompressor demonstrates the §VI-B selection algorithm
// with the paper's own Table VII(a) measurements.
func ExampleSelectCompressor() {
	app := fanstore.AppProfile{
		Name: "SRGAN", IO: fanstore.SyncIO,
		TIter: 9689 * time.Millisecond, CBatch: 256, SBatchMB: 410, Parallelism: 4,
	}
	perf := fanstore.IOPerf{TptRead: 9469, BdwRead: 4969}
	cands := []fanstore.Candidate{
		{Name: "lzsse8", DecompressPerFile: 619 * time.Microsecond, Ratio: 2.5},
		{Name: "lzma", DecompressPerFile: 41261 * time.Microsecond, Ratio: 4.2},
	}
	best, ok := fanstore.SelectCompressor(app, perf, cands)
	fmt.Printf("feasible=%v selected=%s ratio=%.1f\n", ok, best.Name, best.Ratio)
	// Output: feasible=true selected=lzsse8 ratio=2.5
}

// ExampleNode_WriteFile shows the multi-read/single-write output path
// used for checkpoints.
func ExampleNode_WriteFile() {
	bundle, _ := fanstore.Pack([]fanstore.InputFile{
		{Path: "t.bin", Data: []byte("x")},
	}, fanstore.BuildOptions{Partitions: 1, Compressor: "memcpy"})
	_ = fanstore.Run(1, func(c *fanstore.Comm) error {
		node, err := fanstore.Mount(c, bundle.Scatter, nil, fanstore.Options{})
		if err != nil {
			return err
		}
		defer node.Close()
		if err := node.WriteFile("ckpt/model_epoch001.bin", []byte("weights")); err != nil {
			return err
		}
		// Output files are sealed: a second create fails.
		_, err = node.Create("ckpt/model_epoch001.bin")
		fmt.Println("re-create:", err != nil)
		// And training resumes from the newest epoch.
		_, epoch, ok, _ := node.LatestCheckpoint("ckpt")
		fmt.Printf("resume: ok=%v epoch=%d\n", ok, epoch)
		return nil
	})
	// Output:
	// re-create: true
	// resume: ok=true epoch=1
}
