package fanstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"fanstore"
	"fanstore/internal/dataset"
)

// TestPublicAPIEndToEnd drives the whole documented workflow through the
// facade: pack, mount across ranks, POSIX surface, selection, writes.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := dataset.Generator{Kind: dataset.Lung, Seed: 13, Size: 8 << 10}
	var inputs []fanstore.InputFile
	want := map[string][]byte{}
	for _, f := range g.Files(12) {
		inputs = append(inputs, fanstore.InputFile{Path: f.Path, Data: f.Data})
		want[f.Path] = f.Data
	}
	bundle, err := fanstore.Pack(inputs, fanstore.BuildOptions{Partitions: 3, Compressor: "lzma"})
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Ratio() < 3 {
		t.Fatalf("CT data should compress hard, got %.2f", bundle.Ratio())
	}

	err = fanstore.Run(3, func(c *fanstore.Comm) error {
		node, err := fanstore.Mount(c, [][]byte{bundle.Scatter[c.Rank()]}, nil, fanstore.Options{
			CachePolicy: fanstore.FIFO,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		for path, data := range want {
			info, err := node.Stat(path)
			if err != nil || info.Size != int64(len(data)) {
				return fmt.Errorf("stat %s: %+v %v", path, info, err)
			}
			got, err := node.ReadFile(path)
			if err != nil || !bytes.Equal(got, data) {
				return fmt.Errorf("read %s: %v", path, err)
			}
		}
		if _, err := node.Open("missing"); !errors.Is(err, fanstore.ErrNotExist) {
			return fmt.Errorf("want ErrNotExist, got %v", err)
		}
		return node.WriteFile(fmt.Sprintf("out/r%d.txt", c.Rank()), []byte("ok"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISelection(t *testing.T) {
	app := fanstore.AppProfile{
		Name: "toy", IO: fanstore.SyncIO,
		TIter: time.Second, CBatch: 64, SBatchMB: 64, Parallelism: 4,
	}
	perf := fanstore.IOPerf{TptRead: 5000, BdwRead: 3000}
	g := dataset.Generator{Kind: dataset.Lung, Seed: 2, Size: 32 << 10}
	cand, err := fanstore.MeasureCandidate("lzsse8", [][]byte{g.Bytes(0)})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Ratio < 2 {
		t.Fatalf("lzsse8 on CT data: ratio %.2f", cand.Ratio)
	}
	if _, err := fanstore.MeasureCandidate("not-a-codec", nil); err == nil {
		t.Fatal("unknown codec accepted")
	}
	// The choice itself is host-speed dependent; the API contract is that
	// a returned choice is one of the inputs and marked feasible.
	if best, ok := fanstore.SelectCompressor(app, perf, []fanstore.Candidate{cand}); ok {
		if best.Name != "lzsse8" || !best.Feasible {
			t.Fatalf("unexpected choice %+v", best)
		}
	}
}

func TestPublicAPICompressors(t *testing.T) {
	names := fanstore.Compressors()
	if len(names) < 180 {
		t.Fatalf("registry lists %d configurations, want >= 180", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate configuration %s", n)
		}
		seen[n] = true
	}
}

func TestPublicAPIRunTCP(t *testing.T) {
	err := fanstore.RunTCP(2, func(c *fanstore.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("over sockets"))
		}
		data, _, err := c.Recv(0, 1)
		if err != nil || string(data) != "over sockets" {
			return fmt.Errorf("got %q, %v", data, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
