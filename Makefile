# Tier-1 gate: everything `make ci` runs must stay green.
GO ?= go

.PHONY: ci fmt vet test race bench benchsmoke bench-json

# bench-json is non-gating (leading -): a benchmark wobble must not
# fail the tier-1 gate, but the JSON trajectory still refreshes.
ci: fmt vet race test benchsmoke
	-$(MAKE) bench-json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# The concurrency-heavy packages run under the race detector: the mpi
# runtime, the rpc worker pool, the store's fetch/cache data path, the
# decode worker pool and its buffer pool, the prefetch pipeline, the
# training-loop simulator that drives them, and the observability layer
# (span tracer + metrics registry + the obs ops plane, whose HTTP
# handlers read while every rank writes) they all write into
# concurrently. internal/ec rides along with the fault-path tests that
# call into it from concurrent degraded reads.
race:
	$(GO) test -race ./internal/ec/... ./internal/fanstore/... ./internal/rpc/... ./internal/mpi/... ./internal/member/... ./internal/decomp/... ./internal/prefetch/... ./internal/trainsim/... ./internal/trace/... ./internal/metrics/... ./internal/obs/... ./internal/tune/...

bench:
	$(GO) test -run XXX -bench . -benchtime 200x ./internal/fanstore/... ./internal/codec/...

# One iteration of every benchmark, so instrumented hot paths cannot
# silently stop compiling (or start panicking) in bench-only code.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/...

# The benchsmoke sweep with allocation counts, rendered to a JSON
# trajectory file (ns/op + allocs/op per benchmark) via cmd/benchjson.
# Override BENCH_OUT to land the trajectory elsewhere.
BENCH_OUT ?= BENCH_PR10.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./internal/... | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
