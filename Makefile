# Tier-1 gate: everything `make ci` runs must stay green.
GO ?= go

.PHONY: ci fmt vet test race bench

ci: fmt vet race test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

# The concurrency-heavy packages run under the race detector: the mpi
# runtime, the rpc worker pool, the store's fetch/cache data path, the
# prefetch pipeline, and the training-loop simulator that drives them.
race:
	$(GO) test -race ./internal/fanstore/... ./internal/rpc/... ./internal/mpi/... ./internal/prefetch/... ./internal/trainsim/...

bench:
	$(GO) test -run XXX -bench . -benchtime 200x ./internal/fanstore/... ./internal/codec/...
