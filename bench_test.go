// Benchmarks regenerating the measured core of every table and figure in
// the paper's evaluation (§VII), one Benchmark per exhibit, plus the
// ablation benches for the design decisions called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Custom metrics: files/s for read-path benches (the unit of Tables III
// and VI), MB/s for codec benches (the Fig. 7 axis), ratio for
// compression benches (Table IV), and eff% for scaling benches (Fig. 9).
package fanstore_test

import (
	"fmt"
	"testing"
	"time"

	"fanstore"
	"fanstore/internal/cluster"
	"fanstore/internal/codec"
	"fanstore/internal/dataset"
	"fanstore/internal/iobench"
	"fanstore/internal/lossy"
	"fanstore/internal/prefetch"
	"fanstore/internal/selector"
	"fanstore/internal/tfrecord"
	"fanstore/internal/trainsim"
)

// buildSet packs a synthetic dataset and returns the bundle plus paths.
func buildSet(b *testing.B, kind dataset.Kind, n, size, parts int, compressor string) (*fanstore.Bundle, []string) {
	b.Helper()
	g := dataset.Generator{Kind: kind, Seed: 17, Size: size}
	inputs := make([]fanstore.InputFile, n)
	paths := make([]string, n)
	for i := range inputs {
		f := g.File(i, n)
		inputs[i] = fanstore.InputFile{Path: f.Path, Data: f.Data}
		paths[i] = f.Path
	}
	bundle, err := fanstore.Pack(inputs, fanstore.BuildOptions{Partitions: parts, Compressor: compressor})
	if err != nil {
		b.Fatal(err)
	}
	return bundle, paths
}

// withNode mounts a single-rank store and runs the timed body inside it.
func withNode(b *testing.B, bundle *fanstore.Bundle, opts fanstore.Options, body func(*fanstore.Node)) {
	b.Helper()
	err := fanstore.Run(1, func(c *fanstore.Comm) error {
		node, err := fanstore.Mount(c, bundle.Scatter, nil, opts)
		if err != nil {
			return err
		}
		defer node.Close()
		b.ResetTimer()
		body(node)
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1 evaluates the efficiency/capacity model of Fig. 1.
func BenchmarkFig1(b *testing.B) {
	nodes := []int{1, 2, 3, 4, 6, 8, 12, 16}
	for i := 0; i < b.N; i++ {
		trainsim.EfficiencyModel(cluster.GTX, 140, 256, 128, 2.4, nodes)
	}
}

// BenchmarkFig6 compares the two read paths of Fig. 6: FanStore per-file
// access versus a TFRecord scan with tf.Example parsing.
func BenchmarkFig6(b *testing.B) {
	const n, size = 24, 96 << 10
	bundle, paths := buildSet(b, dataset.ImageNet, n, size, 1, "memcpy")
	b.Run("FanStore", func(b *testing.B) {
		withNode(b, bundle, fanstore.Options{CachePolicy: fanstore.Immediate}, func(node *fanstore.Node) {
			files := 0
			for i := 0; i < b.N; i++ {
				if _, err := node.ReadFile(paths[i%len(paths)]); err != nil {
					b.Fatal(err)
				}
				files++
			}
			b.ReportMetric(float64(files)/b.Elapsed().Seconds(), "files/s")
		})
	})
	b.Run("TFRecord", func(b *testing.B) {
		g := dataset.Generator{Kind: dataset.ImageNet, Seed: 17, Size: size}
		names := make([]string, n)
		payloads := make([][]byte, n)
		for i := range names {
			f := g.File(i, n)
			names[i], payloads[i] = f.Path, f.Data
		}
		blob, err := tfrecord.MarshalDataset(names, payloads)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		files := 0
		for i := 0; i < b.N; i++ {
			res, err := iobench.MeasureTFExamples(blob, 1)
			if err != nil {
				b.Fatal(err)
			}
			files += res.Files
		}
		b.ReportMetric(float64(files)/b.Elapsed().Seconds(), "files/s")
	})
}

// BenchmarkTable3 measures the live FanStore read path at the four
// Table III file sizes (the modeled device rows print via
// cmd/experiments -run table3).
func BenchmarkTable3(b *testing.B) {
	for _, size := range []int{128 << 10, 512 << 10, 2 << 20, 8 << 20} {
		size := size
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			n := 16
			if size >= 2<<20 {
				n = 4
			}
			bundle, paths := buildSet(b, dataset.ImageNet, n, size, 1, "memcpy")
			withNode(b, bundle, fanstore.Options{CachePolicy: fanstore.Immediate, CacheBytes: 1 << 30}, func(node *fanstore.Node) {
				for i := 0; i < b.N; i++ {
					if _, err := node.ReadFile(paths[i%len(paths)]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "files/s")
				b.SetBytes(int64(size))
			})
		})
	}
}

// BenchmarkFig7 times decompression for one representative of each codec
// family on the EM (tif) dataset — the x-axis of Fig. 7.
func BenchmarkFig7(b *testing.B) {
	g := dataset.Generator{Kind: dataset.EM, Seed: 17, Size: 256 << 10}
	src := g.Bytes(0)
	for _, name := range []string{"memcpy", "lzf", "lzsse8", "lz4", "lz4hc", "huff", "zling", "brotli", "flate-6", "lzma"} {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg := codec.MustGet(name)
			comp, err := cfg.Codec.Compress(nil, src)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			var dst []byte
			for i := 0; i < b.N; i++ {
				dst, err = cfg.Codec.Decompress(dst[:0], comp)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(src))/float64(len(comp)), "ratio")
		})
	}
}

// BenchmarkTable4 times compression of each dataset with the paper's four
// Table IV codecs, reporting the achieved ratio.
func BenchmarkTable4(b *testing.B) {
	for _, kind := range dataset.Kinds() {
		size := 128 << 10
		if kind == dataset.Tokamak {
			size = 1200
		}
		g := dataset.Generator{Kind: kind, Seed: 17, Size: size}
		src := g.Bytes(0)
		for _, name := range []string{"lzsse8", "lz4hc", "lzma", "xz"} {
			b.Run(fmt.Sprintf("%s/%s", kind.Spec().Format, name), func(b *testing.B) {
				cfg := codec.MustGet(name)
				b.SetBytes(int64(len(src)))
				var comp []byte
				var err error
				for i := 0; i < b.N; i++ {
					comp, err = cfg.Codec.Compress(comp[:0], src)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(src))/float64(len(comp)), "ratio")
			})
		}
	}
}

// BenchmarkTable6 measures the live read path at the Table VI file sizes
// through a compressed (lzsse8) store — read plus decompression, the
// quantity Tpt_read/Bdw_read capture.
func BenchmarkTable6(b *testing.B) {
	for _, tc := range []struct {
		label string
		size  int
	}{{"512KB", 512 << 10}, {"2MB", 2 << 20}, {"1KB", 1 << 10}} {
		tc := tc
		b.Run(tc.label, func(b *testing.B) {
			n := 16
			if tc.size >= 2<<20 {
				n = 4
			}
			bundle, paths := buildSet(b, dataset.EM, n, tc.size, 1, "lzsse8")
			withNode(b, bundle, fanstore.Options{CachePolicy: fanstore.Immediate, CacheBytes: 1 << 30}, func(node *fanstore.Node) {
				for i := 0; i < b.N; i++ {
					if _, err := node.ReadFile(paths[i%len(paths)]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "files/s")
				b.SetBytes(int64(tc.size))
			})
		})
	}
}

// BenchmarkTable7 runs the full selection pipeline (Eq. 1-3 evaluation
// over the Table VII(a) candidate set).
func BenchmarkTable7(b *testing.B) {
	app := cluster.SRGANonGTX.SelectorProfile()
	perf := cluster.GTX.FanStorePerf(762 << 10)
	cands := []selector.Candidate{
		{Name: "lzsse8", DecompressPerFile: 619 * time.Microsecond, Ratio: 2.5},
		{Name: "lz4hc", DecompressPerFile: 858 * time.Microsecond, Ratio: 2.1},
		{Name: "brotli", DecompressPerFile: 4741 * time.Microsecond, Ratio: 3.4},
		{Name: "zling", DecompressPerFile: 17123 * time.Microsecond, Ratio: 3.1},
		{Name: "lzma", DecompressPerFile: 41261 * time.Microsecond, Ratio: 4.2},
	}
	for i := 0; i < b.N; i++ {
		if _, ok := selector.Select(app, perf, cands); !ok {
			b.Fatal("no selection")
		}
	}
}

// BenchmarkFig8 evaluates the training-iteration model for all three
// application panels and their candidate compressors.
func BenchmarkFig8(b *testing.B) {
	type panel struct {
		app   cluster.App
		c     cluster.Cluster
		cands []selector.Candidate
	}
	panels := []panel{
		{cluster.SRGANonGTX, cluster.GTX, []selector.Candidate{
			{Name: "lzsse8", DecompressPerFile: 619 * time.Microsecond, Ratio: 2.5},
			{Name: "lzma", DecompressPerFile: 41261 * time.Microsecond, Ratio: 4.2}}},
		{cluster.FRNNonCPU, cluster.CPU, []selector.Candidate{
			{Name: "lzf", DecompressPerFile: 410 * time.Nanosecond, Ratio: 8.7}}},
		{cluster.SRGANonV100, cluster.V100, []selector.Candidate{
			{Name: "lz4hc", DecompressPerFile: 942 * time.Microsecond, Ratio: 2.1}}},
	}
	for i := 0; i < b.N; i++ {
		for _, p := range panels {
			for _, cand := range p.cands {
				cfg := trainsim.Config{
					App: p.app, Clust: p.c, Nodes: 4,
					DecompressPerFile: cand.DecompressPerFile, Ratio: cand.Ratio,
				}
				_ = cfg.RelativePerf()
			}
		}
	}
}

// BenchmarkFig9 runs the weak-scaling sweeps to 512 nodes and reports the
// terminal efficiency.
func BenchmarkFig9(b *testing.B) {
	resnet := trainsim.Config{
		App: cluster.ResNet50, Clust: cluster.CPU,
		DecompressPerFile: 50 * time.Microsecond, Ratio: 1,
	}
	counts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	var eff float64
	for i := 0; i < b.N; i++ {
		pts := trainsim.WeakScaling(resnet, counts)
		eff = pts[len(pts)-1].Efficiency
	}
	b.ReportMetric(eff*100, "eff%")
}

// --- Ablation benches (DESIGN.md key decisions) ---

// BenchmarkAblationCachePolicy compares the paper's pinned FIFO against
// LRU and immediate release under a uniform-random re-read workload with
// a cache holding half the dataset (§IV-C3's argument: uniform access
// probability makes recency worthless, so FIFO ~ LRU, both beating
// immediate release).
func BenchmarkAblationCachePolicy(b *testing.B) {
	const n, size = 32, 64 << 10
	for _, pol := range []fanstore.Policy{fanstore.FIFO, fanstore.LRU, fanstore.Immediate} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			bundle, paths := buildSet(b, dataset.EM, n, size, 1, "lzsse8")
			opts := fanstore.Options{CachePolicy: pol, CacheBytes: int64(n * size / 2)}
			withNode(b, bundle, opts, func(node *fanstore.Node) {
				for i := 0; i < b.N; i++ {
					if _, err := node.ReadFile(paths[(i*7)%len(paths)]); err != nil {
						b.Fatal(err)
					}
				}
				st := node.Stats()
				b.ReportMetric(float64(st.Decompresses)/float64(b.N), "decomp/op")
			})
		})
	}
}

// BenchmarkAblationMetadata compares FanStore's RAM-table stat() against
// the modeled shared-filesystem RPC it replaces (§IV-C1).
func BenchmarkAblationMetadata(b *testing.B) {
	bundle, paths := buildSet(b, dataset.ImageNet, 64, 4<<10, 1, "memcpy")
	b.Run("fanstore-ram", func(b *testing.B) {
		withNode(b, bundle, fanstore.Options{}, func(node *fanstore.Node) {
			for i := 0; i < b.N; i++ {
				if _, err := node.Stat(paths[i%len(paths)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("lustre-rpc-model", func(b *testing.B) {
		dev := cluster.CPU.Shared.Device()
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total += dev.Overhead // one MDS round trip per stat
		}
		b.ReportMetric(float64(total)/float64(b.N), "modeled-ns/op")
	})
}

// BenchmarkAblationRing compares reading a peer's partition with and
// without ring replication (§V-D): replicated data is served locally,
// unreplicated data costs a fetch message round trip per open.
func BenchmarkAblationRing(b *testing.B) {
	const n, size = 16, 64 << 10
	for _, replicate := range []bool{false, true} {
		name := "remote-fetch"
		if replicate {
			name = "ring-replicated"
		}
		b.Run(name, func(b *testing.B) {
			g := dataset.Generator{Kind: dataset.EM, Seed: 17, Size: size}
			inputs := make([]fanstore.InputFile, n)
			paths := make([]string, n)
			for i := range inputs {
				f := g.File(i, n)
				inputs[i] = fanstore.InputFile{Path: f.Path, Data: f.Data}
				paths[i] = f.Path
			}
			bundle, err := fanstore.Pack(inputs, fanstore.BuildOptions{Partitions: 2, Compressor: "lzsse8"})
			if err != nil {
				b.Fatal(err)
			}
			err = fanstore.Run(2, func(c *fanstore.Comm) error {
				opts := fanstore.Options{CachePolicy: fanstore.Immediate}
				own := [][]byte{bundle.Scatter[c.Rank()]}
				if replicate {
					extra, err := fanstore.RingReplicate(c, own)
					if err != nil {
						return err
					}
					opts.Replicas = extra
				}
				node, err := fanstore.Mount(c, own, nil, opts)
				if err != nil {
					return err
				}
				defer node.Close()
				if c.Rank() == 0 {
					// Rank 0 reads only rank 1's files (partition 1 holds
					// the odd-indexed round-robin assignments).
					var theirs []string
					for i := 1; i < n; i += 2 {
						theirs = append(theirs, paths[i])
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := node.ReadFile(theirs[i%len(theirs)]); err != nil {
							return err
						}
					}
					b.StopTimer()
					st := node.Stats()
					b.ReportMetric(float64(st.RemoteOpens)/float64(b.N), "remote/op")
				}
				return c.Barrier()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationInterception quantifies the user-space shim cost the
// function-interception design keeps low (§V-C): a full open/read/close
// cycle against a warm cache, the hot path of every training iteration.
func BenchmarkAblationInterception(b *testing.B) {
	bundle, paths := buildSet(b, dataset.ImageNet, 8, 64<<10, 1, "memcpy")
	withNode(b, bundle, fanstore.Options{}, func(node *fanstore.Node) {
		buf := make([]byte, 64<<10)
		for i := 0; i < b.N; i++ {
			f, err := node.Open(paths[i%len(paths)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Read(buf); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(64 << 10)
	})
}

// BenchmarkExtensionLossy times the §VIII future-work codecs (SZ and
// ZFP) on smooth float32 data.
func BenchmarkExtensionLossy(b *testing.B) {
	src := make([]float32, 64<<10)
	v := 0.0
	for i := range src {
		v += float64(i%17)*0.001 - 0.008
		src[i] = float32(v)
	}
	codecs := []lossy.FloatCodec{
		lossy.SZ{ErrBound: 1e-3},
		lossy.ZFP{Rate: 8},
		lossy.ZFP{Rate: 16},
	}
	for _, c := range codecs {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			coded, err := c.Compress(nil, src)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(4 * len(src)))
			b.ResetTimer()
			var out []float32
			for i := 0; i < b.N; i++ {
				out, err = c.Decompress(out[:0], coded)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lossy.Ratio(len(src), len(coded)), "ratio")
		})
	}
}

// BenchmarkExtensionPrefetch measures the async pipeline's ability to
// hide per-file latency (Fig. 5b): iterations should cost ~max(compute,
// io/workers), not compute+io.
func BenchmarkExtensionPrefetch(b *testing.B) {
	bundle, paths := buildSet(b, dataset.EM, 32, 32<<10, 1, "lzsse8")
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			withNode(b, bundle, fanstore.Options{CachePolicy: fanstore.Immediate}, func(node *fanstore.Node) {
				sampler := func(i int) ([]string, bool) {
					if i >= b.N {
						return nil, false
					}
					return paths[(i*4)%len(paths) : (i*4)%len(paths)+4], true
				}
				pipe := prefetch.New(node, sampler, prefetch.Options{Workers: workers, Depth: 2})
				defer pipe.Stop()
				for i := 0; i < b.N; i++ {
					if _, ok, err := pipe.Next(); err != nil || !ok {
						b.Fatalf("iter %d: ok=%v err=%v", i, ok, err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationChunked compares the §III chunk-permutation workaround
// against FanStore's global view for the same training run.
func BenchmarkAblationChunked(b *testing.B) {
	ch := trainsim.Chunked{
		Base:         trainsim.Config{App: cluster.ResNet50, Clust: cluster.CPU, Nodes: 64, Ratio: 1},
		PermuteEvery: 5,
		DatasetBytes: 140 << 30,
	}
	var chunked, global time.Duration
	for i := 0; i < b.N; i++ {
		chunked = ch.TrainTime(90, 1_300_000)
		global = ch.GlobalViewTrainTime(90, 1_300_000)
	}
	b.ReportMetric(global.Seconds()/chunked.Seconds(), "global/chunked")
}
