// Package fanstore is the public API of this FanStore reproduction: a
// distributed, compressed, POSIX-style object store for deep-learning
// training data, after "Efficient I/O for Neural Network Training with
// Compressed Data" (IPPS 2020).
//
// The typical flow mirrors the paper's workflow:
//
//  1. Prepare: pack a dataset into compressed partitions once
//     (Pack / the fanstore-prep command).
//  2. Launch: start one rank per node (Run) and Mount each rank's
//     partitions; metadata is exchanged collectively so every rank sees
//     the whole namespace from RAM.
//  3. Train: read files through the POSIX-style surface (Open/Read/
//     Stat/ReadDir); writes (checkpoints, logs) go through Create.
//  4. Choose a compressor with SelectCompressor, which applies the
//     paper's Eq. 1-3 selection algorithm to measured candidates.
//
// Implementation packages live under internal/: codec (the compressor
// suite), pack (the partition format), mpi (the SPMD runtime), rpc (the
// daemon's request/response wire layer), fanstore (the store itself),
// selector, dataset, tfrecord, fsim/simnet/cluster/trainsim (the
// evaluation substrates), and experiments (the harness regenerating
// every table and figure).
package fanstore

import (
	"io"
	"time"

	"fanstore/internal/codec"
	store "fanstore/internal/fanstore"
	"fanstore/internal/metrics"
	"fanstore/internal/mpi"
	"fanstore/internal/obs"
	"fanstore/internal/pack"
	"fanstore/internal/prefetch"
	"fanstore/internal/selector"
	"fanstore/internal/trace"
	"fanstore/internal/tune"
)

// Core store types.
type (
	// Node is one rank's FanStore instance: local compressed objects,
	// the global metadata table, the decompression cache, and the
	// daemon serving peers.
	Node = store.Node
	// File is an open FanStore file descriptor.
	File = store.File
	// Options configures Mount (cache size/policy, replica partitions).
	Options = store.Options
	// Info is the stat() result.
	Info = store.Info
	// DirEntry is one readdir() result.
	DirEntry = store.DirEntry
	// Stats counts data-path events.
	Stats = store.Stats
	// Metrics carries open/fetch latency histogram snapshots.
	Metrics = store.Metrics
	// Policy selects the cache replacement strategy.
	Policy = store.Policy
	// Backend stores a rank's compressed objects (RAM or spill-to-disk);
	// Options.Backend accepts custom implementations for testing or
	// alternative storage tiers.
	Backend = store.Backend
)

// Cache policies (§IV-C3; FIFO is the paper's choice).
const (
	FIFO      = store.FIFO
	LRU       = store.LRU
	Immediate = store.Immediate
)

// Runtime types.
type (
	// Comm is one rank's communicator (Send/Recv/Allgather/Barrier).
	Comm = mpi.Comm
	// InputFile is one source file handed to Pack.
	InputFile = pack.InputFile
	// BuildOptions configures Pack.
	BuildOptions = pack.BuildOptions
	// Bundle is Pack's output: scatter partitions plus a broadcast
	// partition.
	Bundle = pack.Bundle
)

// Selection types (§VI-B).
type (
	// AppProfile carries the application inputs of Table V.
	AppProfile = selector.AppProfile
	// IOPerf is measured FanStore read performance (Table VI).
	IOPerf = selector.IOPerf
	// Candidate is one compressor's measured cost and ratio.
	Candidate = selector.Candidate
	// Choice is a per-candidate selection verdict.
	Choice = selector.Choice
)

// I/O modes for AppProfile.
const (
	SyncIO  = selector.Sync
	AsyncIO = selector.Async
)

// Progressive compression (layered containers): Pack with
// BuildOptions.Layers >= 2 encodes every file as a base layer plus
// refinement layers, any prefix of which decodes to a valid
// lower-fidelity record. A mounted Node then reads
// bandwidth-proportionally: Node.SetFidelity caps demand opens and
// prefetch at a layer budget, and later full-fidelity reads upgrade
// resident entries in place by fetching only the missing refinement
// byte ranges.
type (
	// LayeredCandidate is one codec measured through the layered
	// container: the full-fidelity ratio plus the per-level fidelity
	// curve (bytes fraction, decode cost).
	LayeredCandidate = selector.LayeredCandidate
	// FidelityPoint is one level of a LayeredCandidate's curve.
	FidelityPoint = selector.FidelityPoint
	// FidelitySchedule maps training epochs to layer budgets.
	FidelitySchedule = prefetch.FidelitySchedule
	// FidelityPhase is one schedule phase: Epochs epochs at Level.
	FidelityPhase = prefetch.FidelityPhase
)

// Layer bounds and the full-fidelity sentinel.
const (
	// MaxLayers bounds BuildOptions.Layers.
	MaxLayers = codec.MaxLayers
	// FidelityFull requests every layer (Node.SetFidelity's default).
	FidelityFull = store.FidelityFull
)

// ParseFidelitySchedule parses the flag syntax "level@epochs[,...]",
// e.g. "1@4,2@2": four epochs at the base layer, two at two layers,
// then full fidelity. Empty input is a valid empty schedule.
func ParseFidelitySchedule(s string) (FidelitySchedule, error) {
	return prefetch.ParseFidelitySchedule(s)
}

// MeasureLayered profiles one codec through the layered container on
// sample files, producing the per-level fidelity curve SelectFidelity
// evaluates.
func MeasureLayered(name string, layersCount int, samples [][]byte) (LayeredCandidate, error) {
	return selector.MeasureLayered(name, layersCount, samples)
}

// SelectFidelity applies the Eq. 1-3 budget at every level of the curve
// and picks the lowest feasible layer budget — the warmup fidelity whose
// decode still hides in the wire savings. ok is false when none fits.
func SelectFidelity(app AppProfile, perf IOPerf, lc LayeredCandidate) (FidelityPoint, bool) {
	return selector.SelectFidelity(app, perf, lc)
}

// Observability types: the per-rank span tracer, the unified metrics
// registry, and the cluster-wide aggregated report.
type (
	// Tracer records per-operation spans into a fixed-size ring buffer;
	// pass one via Options.Tracer. A nil *Tracer disables tracing at
	// zero cost on the hot path.
	Tracer = trace.Tracer
	// Registry is the named metrics table shared by every component of a
	// rank; pass one via Options.Metrics to unify cache, rpc, store, and
	// pipeline instruments under a single snapshot.
	Registry = metrics.Registry
	// RegistrySnapshot is a serializable point-in-time copy of a
	// registry, mergeable across ranks.
	RegistrySnapshot = metrics.RegistrySnapshot
	// ClusterReport is the merged view of every rank's snapshot with
	// straggler detection.
	ClusterReport = store.ClusterReport
	// ReportOptions configures the cluster report reduction.
	ReportOptions = store.ReportOptions
)

// Live operations plane (internal/obs): the embedded per-rank HTTP ops
// server, the rolling time-series sampler behind its /series endpoint,
// the structured event log the store's fault paths emit into, and the
// continuous cluster health monitor. Nothing here touches the data
// path unless constructed — a run without an ops address pays zero
// goroutines and zero allocations for the plane's existence.
type (
	// EventLog is the bounded ring of structured operational events
	// (failovers, map changes, rebalances, degraded reads, stragglers);
	// pass one via Options.Events. A nil *EventLog disables emission at
	// zero cost.
	EventLog = obs.EventLog
	// OpsServer serves /metrics, /varz, /series, /healthz, /statusz,
	// /trace, /events and /debug/pprof for one rank.
	OpsServer = obs.Server
	// OpsServerOptions wires an OpsServer to a rank's registry, tracer,
	// event log, and health callback.
	OpsServerOptions = obs.ServerOptions
	// Sampler snapshots a registry on a fixed interval into a rolling
	// ring of delta windows (counter rates, windowed quantiles).
	Sampler = obs.Sampler
	// HealthMonitor continuously polls member snapshots and keeps a
	// live straggler verdict using the cluster report's detector.
	HealthMonitor = obs.Monitor
	// HealthMonitorOptions configures a HealthMonitor.
	HealthMonitorOptions = obs.MonitorOptions
	// Health is the /healthz payload.
	Health = obs.Health
)

// Online autotuning (internal/tune): the metrics-driven controller
// that hill-climbs the store's live knobs — decode workers, fetch
// batch size, the admission budget — with guarded revert. Wire it
// with Node.Knobs and the rank's registry; Node.AddStatus surfaces
// its verdict on /statusz.
type (
	// Tuner is the online knob controller.
	Tuner = tune.Controller
	// TunerOptions configures a Tuner (Registry and Knobs required).
	TunerOptions = tune.Options
	// TuneKnob is one live-adjustable setting a Tuner may move.
	TuneKnob = tune.Knob
)

// NewTuner builds an autotuning controller; Start runs it periodically,
// Tick drives one deterministic step.
func NewTuner(o TunerOptions) *Tuner { return tune.New(o) }

// NewEventLog builds an event log for rank with a bounded ring of the
// given capacity (the package default when <= 0).
func NewEventLog(rank, capacity int) *EventLog { return obs.NewEventLog(rank, capacity) }

// ServeOps binds addr and serves the ops endpoints for the wired
// sources; Node.StartOps is the one-call version for a mounted store.
func ServeOps(addr string, o OpsServerOptions) (*OpsServer, error) { return obs.Serve(addr, o) }

// NewHealthMonitor builds a cluster health monitor; Start polls
// continuously, Poll drives one round manually.
func NewHealthMonitor(o HealthMonitorOptions) *HealthMonitor { return obs.NewMonitor(o) }

// FlagStragglers adapts the cluster report's straggler detector to the
// health monitor's Flag shape, so live and post-run verdicts share one
// methodology.
func FlagStragglers(opts ReportOptions) func([]RegistrySnapshot) []int {
	return store.FlagStragglers(opts)
}

// CollectRegistries is the monitor Collect source for in-process
// multi-rank runs: every rank's registry read directly.
func CollectRegistries(regs []*Registry) func() ([]RegistrySnapshot, error) {
	return obs.CollectRegistries(regs)
}

// CollectHTTP is the monitor Collect source for multi-process
// deployments: each member's /varz scraped over HTTP.
func CollectHTTP(addrs []string, timeout time.Duration) func() ([]RegistrySnapshot, error) {
	return obs.CollectHTTP(addrs, timeout)
}

// OpsAddrForRank shifts an ops listen address's port by rank — the
// convention in-process multi-rank commands use so every rank gets its
// own endpoint (":0" passes through unchanged).
func OpsAddrForRank(addr string, rank int) (string, error) { return obs.OffsetAddr(addr, rank) }

// NewTracer builds a span tracer for rank with a ring of the given
// capacity (the package default when <= 0).
func NewTracer(rank, capacity int) *Tracer { return trace.New(rank, capacity) }

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// WriteChromeTrace merges the tracers' spans and writes Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing with one
// track per rank.
func WriteChromeTrace(w io.Writer, tracers ...*Tracer) error {
	return trace.WriteChrome(w, tracers...)
}

// GatherReport is the cluster-report collective: every rank contributes
// its registry snapshot via Allgather and all ranks return the same
// merged report. Every rank must call it together.
func GatherReport(c *Comm, reg *Registry, opts ReportOptions) (ClusterReport, error) {
	return store.GatherReport(c, reg, opts)
}

// BuildClusterReport folds per-rank snapshots (index = rank) into a
// cluster report without a communicator — the simulator's path.
func BuildClusterReport(snaps []RegistrySnapshot, opts ReportOptions) ClusterReport {
	return store.BuildClusterReport(snaps, opts)
}

// Run starts n FanStore ranks in-process, invoking f with each rank's
// communicator, and returns the first error. It is the substitution for
// an mpiexec launch (§V-D).
func Run(n int, f func(*Comm) error) error { return mpi.Run(n, f) }

// RunTCP is Run with messages carried over real loopback TCP sockets,
// exercising serialization and the kernel network stack.
func RunTCP(n int, f func(*Comm) error) error { return mpi.RunTCP(n, f) }

// JoinTCP joins a world of separate OS processes through a rendezvous
// directory — the paper's mpiexec deployment shape. Each process calls it
// with its own rank; the returned leave function releases the transport.
// cmd/fanstore-daemon is the ready-made per-node process built on it.
func JoinTCP(dir string, rank, size int, timeout time.Duration) (*Comm, func(), error) {
	return mpi.JoinTCP(dir, rank, size, timeout)
}

// JoinTCPMembers is JoinTCP for elastic deployments: the world spans
// size slots but this rank only waits for the listed initial members;
// the other slots' addresses resolve lazily when they come up. Pair it
// with MountElastic/JoinCluster for multi-process elastic clusters.
func JoinTCPMembers(dir string, rank, size int, waitFor []int, timeout time.Duration) (*Comm, func(), error) {
	return mpi.JoinTCPMembers(dir, rank, size, waitFor, timeout)
}

// Mount loads this rank's partitions, builds the global metadata view
// collectively, and starts the FanStore daemon. Every rank must call it.
func Mount(c *Comm, partitions [][]byte, broadcast []byte, opts Options) (*Node, error) {
	return store.Mount(c, partitions, broadcast, opts)
}

// ElasticOptions configures an elastic mount: the usual Options plus the
// initial member count and the per-node capacity used by rebalance
// planning.
type ElasticOptions = store.ElasticOptions

// MountElastic mounts a FanStore whose membership can change while it
// serves: ranks 0..InitialMembers-1 of the world form the cluster under
// a versioned cluster map (rank 0 coordinates), and the remaining world
// slots stay free for JoinCluster. Growing and shrinking trigger online
// delta rebalances; reads are served throughout.
func MountElastic(c *Comm, partitions [][]byte, opts ElasticOptions) (*Node, error) {
	return store.MountElastic(c, partitions, opts)
}

// JoinCluster adds this rank to a running elastic cluster mid-training:
// it is admitted to the cluster map, downloads the metadata table, and
// returns once the triggered rebalance has moved its share of the
// partitions onto it.
func JoinCluster(c *Comm, coordRank int, opts ElasticOptions) (*Node, error) {
	return store.JoinCluster(c, coordRank, opts)
}

// Redundancy is the mount-time redundancy selection for elastic mounts:
// whole-partition replication (the default) or ec(k,m) erasure coding,
// which stripes every partition into k data + m parity shards at m/k
// memory overhead and keeps objects readable through degraded
// reconstruction when up to m members die.
type Redundancy = store.Redundancy

// RedundancyMode selects how a mount survives losing a node.
type RedundancyMode = store.RedundancyMode

// Redundancy modes for Options.Redundancy.
const (
	RedundancyReplicate = store.RedundancyReplicate
	RedundancyEC        = store.RedundancyEC
)

// ParseRedundancy parses the flag syntax: "replicate" (or empty) and
// "ec(k,m)", e.g. "ec(4,2)".
func ParseRedundancy(s string) (Redundancy, error) { return store.ParseRedundancy(s) }

// RingReplicate passes each rank's partitions to its ring neighbor and
// returns the predecessor's, for placing extra replicas without touching
// the shared filesystem (§V-D).
func RingReplicate(c *Comm, partitions [][]byte) ([][]byte, error) {
	return store.RingReplicate(c, partitions)
}

// NewRAMBackend returns the default in-RAM storage backend: compressed
// objects alias the partition blobs, so uncompressed datasets can be
// served zero-copy.
func NewRAMBackend() Backend { return store.NewRAMBackend() }

// NewSpillBackend returns a storage backend keeping partition blobs on
// local disk under dir (§V-C's burst-buffer mode); only file offsets stay
// in RAM. prefix namespaces this rank's spill files within dir.
func NewSpillBackend(dir, prefix string) (Backend, error) {
	return store.NewSpillBackend(dir, prefix)
}

// Pack runs the data preparation tool (§V-B): it compresses every input
// file and serializes the partitioned compressed representation.
func Pack(files []InputFile, opts BuildOptions) (*Bundle, error) {
	return pack.Build(files, opts)
}

// Placement assigns partitions to nodes (§IV-C1).
type Placement = store.Placement

// PlanPlacement decides which partitions each node loads, filling spare
// capacity with ring-neighbor replicas (§IV-C1, §V-D).
func PlanPlacement(partSizes []int64, nodes int, capacity int64) (*Placement, error) {
	return store.PlanPlacement(partSizes, nodes, capacity)
}

// Move is one partition changing node in a delta placement.
type Move = store.Move

// PlanDelta re-plans a placement after the node count changes, moving as
// few partition bytes as possible: partitions keep their previous owner
// whenever it still exists and has room, and only the remainder (plus
// whatever a bounded balance pass shifts) moves.
func PlanDelta(partSizes []int64, prevOwner []int, nodes int, capacity int64) (*Placement, []Move, error) {
	return store.PlanDelta(partSizes, prevOwner, nodes, capacity)
}

// SelectCompressor applies the §VI-B selection algorithm: among measured
// candidates, the one with the highest compression ratio whose
// decompression fits the Eq. 1/2 budget. ok is false when none does.
func SelectCompressor(app AppProfile, perf IOPerf, cands []Candidate) (Choice, bool) {
	return selector.Select(app, perf, cands)
}

// MeasureCandidate profiles one codec configuration (by registry name or
// paper alias such as "lzsse8" or "lzma") on sample files.
func MeasureCandidate(name string, samples [][]byte) (Candidate, error) {
	return selector.MeasureCandidate(name, samples)
}

// Compressors returns the names of every registered codec configuration
// (the 192-configuration sweep space of §VII-D).
func Compressors() []string {
	cfgs := codec.Registry()
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}

// Errors re-exported from the store.
var (
	ErrNotExist = store.ErrNotExist
	ErrExist    = store.ErrExist
	ErrIsDir    = store.ErrIsDir
	ErrNotDir   = store.ErrNotDir
	ErrClosed   = store.ErrClosed
	// ErrVanished reports a remote read whose every candidate
	// authoritatively no longer has the object (deleted or lost), as
	// opposed to unreachable peers or a stale map.
	ErrVanished = store.ErrVanished
)
