// Command fanstore-sim runs the distributed-training simulator: per-
// compressor application performance (Fig. 8) and weak scaling including
// the Lustre comparison (Fig. 9).
//
//	fanstore-sim -mode perf -case srgan-gtx
//	fanstore-sim -mode scaling -case resnet-cpu -nodes 1,8,64,512
//
// With -trace and/or -report it additionally replays a per-rank epoch
// timeline of the case's configuration through the observability stack:
// -trace writes a Chrome trace-event JSON of all simulated ranks, and
// -report prints the cluster-wide aggregated report (with -skew slowing
// the last rank so the straggler detector has something to find; the
// skew multiplies I/O time, so it must be large enough for I/O to
// dominate compute before the rank visibly lags):
//
//	fanstore-sim -case srgan-gtx -trace out.json -report -skew 100
//
// -chaos-kill-rank fail-stops one simulated rank at -chaos-at-epoch over
// an ec(k,m) mount (-redundancy): the kill epoch runs degraded reads and
// the background repair, and the report shows the ec line (degraded-read
// count, reconstruct p99, rebuild throughput):
//
//	fanstore-sim -case srgan-gtx -report -chaos-kill-rank 3 -redundancy 'ec(4,2)'
//
// -fidelity replays a progressive-compression schedule: the case's codec
// is measured through the layered container (-layers planes), and the
// scheduled leading epochs fetch only the base prefix — the
// bandwidth-proportional read. The run prints the measured byte fraction
// and the ablation against the full-fidelity baseline, and the report
// shows the fidelity line (bytes saved, mean level):
//
//	fanstore-sim -case srgan-gtx -report -fidelity '1@2'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"fanstore/internal/cluster"
	"fanstore/internal/dataset"
	"fanstore/internal/fanstore"
	"fanstore/internal/metrics"
	"fanstore/internal/obs"
	"fanstore/internal/prefetch"
	"fanstore/internal/selector"
	"fanstore/internal/trace"
	"fanstore/internal/trainsim"
)

var simCases = map[string]struct {
	app   cluster.App
	clust cluster.Cluster
	kind  dataset.Kind
	cands []string
}{
	"srgan-gtx":  {cluster.SRGANonGTX, cluster.GTX, dataset.EM, []string{"lzsse8", "lz4hc", "brotli", "zling", "lzma"}},
	"frnn-cpu":   {cluster.FRNNonCPU, cluster.CPU, dataset.Tokamak, []string{"lzf", "lzsse8", "brotli"}},
	"srgan-v100": {cluster.SRGANonV100, cluster.V100, dataset.EM, []string{"lz4fast", "lz4hc", "brotli", "lzma"}},
	"resnet-gtx": {cluster.ResNet50, cluster.GTX, dataset.ImageNet, []string{"memcpy"}},
	"resnet-cpu": {cluster.ResNet50, cluster.CPU, dataset.ImageNet, []string{"memcpy"}},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fanstore-sim: ")
	var (
		mode     = flag.String("mode", "perf", "perf (Fig. 8) | scaling (Fig. 9) | explain (iteration breakdown)")
		caseName = flag.String("case", "srgan-gtx", "srgan-gtx|frnn-cpu|srgan-v100|resnet-gtx|resnet-cpu")
		nodesArg = flag.String("nodes", "", "node counts for -mode scaling (default: powers of two up to the cluster)")
		codecArg = flag.String("codec", "", "compressor for -mode scaling (default: case's first candidate)")
		seed     = flag.Int64("seed", 42, "generator seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the simulated ranks to this file")
		report   = flag.Bool("report", false, "print the cluster-wide aggregated report of the simulated ranks")
		simRanks = flag.Int("sim-ranks", 4, "ranks in the -trace/-report epoch replay")
		simEpoch = flag.Int("sim-epochs", 3, "epochs in the -trace/-report epoch replay")
		simFiles = flag.Int("sim-files", 4096, "dataset size (files) in the -trace/-report epoch replay")
		skew     = flag.Float64("skew", 0, "I/O slowdown factor injected into the last simulated rank (0: none)")
		plan     = flag.Bool("plan", false, "replay epochs with the clairvoyant epoch-plan prefetcher (one batched cold fill) instead of the reactive window")
		window   = flag.Int("window", 4, "reactive look-ahead window priced by the replay's per-epoch cold fill (without -plan)")
		admitMB  = flag.Int("admission", 0, "staged-bytes admission budget reported by the -plan replay, MiB (0: unbounded)")
		killRank = flag.Int("chaos-kill-rank", -1, "fail-stop this simulated rank and replay the degraded reads + repair (-1: no chaos)")
		killAt   = flag.Int("chaos-at-epoch", 1, "epoch at whose start -chaos-kill-rank dies")
		redun    = flag.String("redundancy", "ec(4,2)", "redundancy mode of the chaos replay: ec(k,m) (replicate is not survivable by reconstruction)")
		monitor  = flag.Bool("monitor", false, "run the monitored-epoch replay: the live health monitor polls every rank after each epoch and flags the skewed rank mid-run (-skew 0 derives a reliably detectable skew)")
		opsAddr  = flag.String("ops-addr", "", "serve per-rank HTTP ops endpoints during -monitor (rank r listens on port+r; empty disables)")
		pace     = flag.Duration("pace", 0, "wall-clock pause per simulated epoch in -monitor, so the ops endpoints can be curled mid-run (0: full speed)")
		fidSched = flag.String("fidelity", "", "fidelity schedule for the epoch replay, \"level@epochs[,...]\" (e.g. '1@2'): the leading epochs fetch only that many layers of the layered container")
		layersN  = flag.Int("layers", 4, "layer count of the layered container priced by -fidelity")
		tuneOn   = flag.Bool("tune", false, "replay the autotuning ablation: each rank starts mis-tuned and the online controller hill-climbs the live knobs against the simulated signals")
		tuneProf = flag.String("tune-profile", "cpu", "mis-tune profile for -tune: cpu (decode-bound, 1 decode worker) or net (fetch-bound, 4-item batches)")
	)
	flag.Parse()

	tc, ok := simCases[strings.ToLower(*caseName)]
	if !ok {
		log.Fatalf("unknown case %q", *caseName)
	}

	sampleSize := int(tc.app.FileSizeBytes())
	if sampleSize > 256<<10 {
		sampleSize = 256 << 10
	}
	genSamples := func() [][]byte {
		n := 4
		if tc.kind == dataset.Tokamak {
			n = 32
		}
		g := dataset.Generator{Kind: tc.kind, Seed: *seed, Size: sampleSize}
		samples := make([][]byte, n)
		for i := range samples {
			samples[i] = g.Bytes(i)
		}
		return samples
	}
	measure := func(name string) selector.Candidate {
		fileSize := tc.app.FileSizeBytes()
		c, err := selector.MeasureCandidate(name, genSamples())
		if err != nil {
			log.Fatal(err)
		}
		c.DecompressPerFile = time.Duration(float64(c.DecompressPerFile) * float64(fileSize) / float64(sampleSize))
		return c
	}

	switch *mode {
	case "perf":
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "compressor\tratio\tdecompress us/file\titer time\trelative perf\n")
		base := trainsim.Config{App: tc.app, Clust: tc.clust, Nodes: 4, Ratio: 1}
		fmt.Fprintf(w, "baseline\t1.00\t0\t%v\t100.0%%\n", base.IterTime().Round(time.Millisecond))
		for _, name := range tc.cands {
			c := measure(name)
			cfg := trainsim.Config{
				App: tc.app, Clust: tc.clust, Nodes: 4,
				DecompressPerFile: c.DecompressPerFile, Ratio: c.Ratio,
			}
			fmt.Fprintf(w, "%s\t%.2f\t%.0f\t%v\t%.1f%%\n",
				name, c.Ratio, float64(c.DecompressPerFile)/float64(time.Microsecond),
				cfg.IterTime().Round(time.Millisecond), cfg.RelativePerf()*100)
		}
		w.Flush()

	case "scaling":
		var counts []int
		if *nodesArg != "" {
			for _, s := range strings.Split(*nodesArg, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					log.Fatalf("bad node count %q", s)
				}
				counts = append(counts, n)
			}
		} else {
			for n := 1; n <= tc.clust.Nodes; n *= 2 {
				counts = append(counts, n)
			}
		}
		codecName := *codecArg
		if codecName == "" {
			codecName = tc.cands[0]
		}
		c := measure(codecName)
		cfg := trainsim.Config{
			App: tc.app, Clust: tc.clust,
			DecompressPerFile: c.DecompressPerFile, Ratio: c.Ratio,
		}
		fmt.Printf("%s on %s with %s (ratio %.2f)\n", tc.app.Name, tc.clust.Name, codecName, c.Ratio)
		single := cfg
		single.Nodes = 1
		single.RemoteFrac = 0
		t1 := single.Throughput()
		spec := tc.kind.Spec()
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "nodes\tFanStore samples/s\teff\tLustre samples/s\teff\tLustre startup\n")
		for _, p := range trainsim.WeakScaling(cfg, counts) {
			lus := trainsim.LustreScalingAt(cfg, p.Nodes, spec.NumFiles, spec.NumDirs, t1)
			fmt.Fprintf(w, "%d\t%.0f\t%.1f%%\t%.0f\t%.1f%%\t%v\n",
				p.Nodes, p.Throughput, p.Efficiency*100,
				lus.Point.Throughput, lus.Point.Efficiency*100, lus.Startup.Round(time.Second))
		}
		w.Flush()

	case "explain":
		codecName := *codecArg
		if codecName == "" {
			codecName = tc.cands[0]
		}
		cd := measure(codecName)
		cfg := trainsim.Config{
			App: tc.app, Clust: tc.clust, Nodes: 4,
			DecompressPerFile: cd.DecompressPerFile, Ratio: cd.Ratio,
			RemoteFrac: 0.75,
		}
		b := cfg.Explain()
		fmt.Printf("%s on %s with %s (ratio %.2f), 4 nodes, per-iteration breakdown:\n",
			tc.app.Name, tc.clust.Name, codecName, cd.Ratio)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "compute\t%v\n", b.Compute)
		fmt.Fprintf(w, "allreduce\t%v\n", b.Allreduce)
		fmt.Fprintf(w, "read (local)\t%v\n", b.Read)
		fmt.Fprintf(w, "remote transfer\t%v\n", b.RemoteTransfer)
		fmt.Fprintf(w, "decompress\t%v\n", b.Decompress)
		fmt.Fprintf(w, "iteration\t%v (%s bound)\n", b.Iter, b.Bound)
		w.Flush()

	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	if *traceOut == "" && !*report && !*monitor && *fidSched == "" && !*tuneOn {
		return
	}
	// Epoch replay: run the case's configuration through the per-rank
	// tracer and registry, then export/aggregate exactly as a live run
	// would — same formats, same straggler detector.
	codecName := *codecArg
	if codecName == "" {
		codecName = tc.cands[0]
	}
	cd := measure(codecName)
	n := *simRanks
	cfg := trainsim.Config{
		App: tc.app, Clust: tc.clust, Nodes: n,
		DecompressPerFile: cd.DecompressPerFile, Ratio: cd.Ratio,
		RemoteFrac: float64(n-1) / float64(n),
	}
	if *monitor {
		runMonitoredSim(cfg, n, *simEpoch, *simFiles, *skew, *opsAddr, *pace)
		return
	}
	// Fidelity schedule: measure the codec's layered curve so the replay
	// prices the measured base-prefix fraction, not a guess.
	var fsim trainsim.FidelitySim
	if *fidSched != "" {
		sched, err := prefetch.ParseFidelitySchedule(*fidSched)
		if err != nil {
			log.Fatal(err)
		}
		lc, err := selector.MeasureLayered(codecName, *layersN, genSamples())
		if err != nil {
			log.Fatal(err)
		}
		// The replay models one base level followed by full fidelity, so
		// take the leading run of the schedule's first sub-full level.
		level, baseEpochs := 0, 0
		for e := 0; e < *simEpoch; e++ {
			l := int(sched.LevelAt(e))
			if l == 0 || l >= *layersN || (level != 0 && l != level) {
				break
			}
			level = l
			baseEpochs++
		}
		if baseEpochs > 0 {
			pt := lc.Points[level-1]
			fsim = trainsim.FidelitySim{
				BaseEpochs: baseEpochs, BaseFrac: pt.BytesFrac,
				Level: level, Layers: *layersN,
			}
			fmt.Printf("fidelity: level %d/%d moves %.1f%% of the container (wire ratio %.2f vs %.2f full) for %d epoch(s)\n",
				level, *layersN, 100*pt.BytesFrac, lc.EffectiveRatio(pt), lc.Ratio, baseEpochs)
		}
	}
	chaos := *killRank >= 0
	var cc trainsim.ChaosConfig
	if chaos {
		if *killRank >= n {
			log.Fatalf("-chaos-kill-rank %d out of range (0..%d)", *killRank, n-1)
		}
		red, err := fanstore.ParseRedundancy(*redun)
		if err != nil {
			log.Fatal(err)
		}
		if red.Mode != fanstore.RedundancyEC {
			log.Fatalf("-chaos-kill-rank needs -redundancy ec(k,m); %q cannot reconstruct a lost rank", red)
		}
		cc = trainsim.ChaosConfig{
			KillRank: *killRank, KillEpoch: *killAt, K: red.K, M: red.M,
		}
	}
	var tuneSim trainsim.TuneSim
	tuneCfg := cfg
	if *tuneOn {
		switch strings.ToLower(*tuneProf) {
		case "cpu":
			// Decode-bound mis-tune: serial decode on a multi-core box,
			// cheap fabric. The controller must grow decode.workers.
			tuneSim = trainsim.TuneSim{
				Cores: 8, RTT: 200 * time.Microsecond, BurstPerItem: time.Microsecond,
				DecodeWorkers: 1, BatchItems: 64,
			}
		case "net":
			// Fetch-bound mis-tune: long round trips, 4-item batches, and
			// a cheap codec (the measured one would re-bind the run on
			// decode). The controller must grow batch.items to amortize
			// the RTT.
			tuneCfg.DecompressPerFile = 10 * time.Microsecond
			tuneSim = trainsim.TuneSim{
				Cores: 8, RTT: 2 * time.Millisecond, BurstPerItem: 20 * time.Microsecond,
				DecodeWorkers: 8, BatchItems: 4,
			}
		default:
			log.Fatalf("unknown -tune-profile %q (want cpu or net)", *tuneProf)
		}
	}
	tracers := make([]*trace.Tracer, n)
	snaps := make([]metrics.RegistrySnapshot, n)
	var elapsed time.Duration
	var tuneRes trainsim.TunedResult
	tuneEvents := obs.NewEventLog(0, 0)
	for rank := 0; rank < n; rank++ {
		tracers[rank] = trace.NewSynthetic(rank, 0)
		reg := metrics.NewRegistry()
		obs := trainsim.SimObserver{Tracer: tracers[rank], Metrics: reg}
		if *skew > 0 && rank == n-1 {
			obs.Skew = *skew
		}
		var t time.Duration
		if *tuneOn {
			ts := tuneSim
			if rank == 0 {
				ts.Controller.Events = tuneEvents
			}
			res := tuneCfg.TraceEpochsTuned(*simEpoch, *simFiles, ts, obs)
			t = res.Wall
			if rank == 0 {
				tuneRes = res
			}
		} else if chaos {
			rcc := cc
			rcc.Rank = rank
			t = cfg.TraceEpochsChaos(*simEpoch, *simFiles, rcc, obs)
		} else if fsim.BaseEpochs > 0 {
			t = cfg.TraceEpochsFidelity(*simEpoch, *simFiles, fsim, obs)
		} else {
			rc := trainsim.ReplayConfig{Mode: trainsim.PrefetchWindow, Window: *window}
			if *plan {
				rc.Mode = trainsim.PrefetchPlanned
				rc.AdmissionBytes = int64(*admitMB) << 20
			}
			t = cfg.TraceEpochsReplay(*simEpoch, *simFiles, rc, obs)
		}
		if t > elapsed {
			elapsed = t
		}
		snaps[rank] = reg.Snapshot()
	}
	if *tuneOn {
		// The ablation, from rank 0's run: mis-tuned static knobs vs the
		// online controller vs the grid-swept hand-tuned oracle.
		fmt.Printf("tune ablation (%s profile): static %v | tuned %v | hand-tuned %v\n",
			strings.ToLower(*tuneProf),
			tuneRes.StaticWall.Round(time.Millisecond),
			tuneRes.Wall.Round(time.Millisecond),
			tuneRes.BestWall.Round(time.Millisecond))
		fmt.Printf("tune convergence: final epoch %v vs oracle %v (%.1f%% off; oracle knobs workers=%d batch=%d)\n",
			tuneRes.FinalEpoch.Round(time.Millisecond), tuneRes.BestEpoch.Round(time.Millisecond),
			100*(float64(tuneRes.FinalEpoch)/float64(tuneRes.BestEpoch)-1),
			tuneRes.BestWorkers, tuneRes.BestBatch)
		fmt.Printf("tune decisions: %d moves, %d reverts; knob trace (workers/batch per epoch):\n", tuneRes.Moves, tuneRes.Reverts)
		for e := range tuneRes.WorkersTrace {
			fmt.Printf("  epoch %2d: workers=%-3d batch=%-4d epoch time %v\n",
				e, tuneRes.WorkersTrace[e], tuneRes.BatchTrace[e],
				tuneRes.EpochDurs[e].Round(time.Millisecond))
		}
		if evs := tuneEvents.Events(); len(evs) > 0 {
			fmt.Printf("tune event log (rank 0):\n")
			for _, e := range evs {
				fmt.Printf("  [%s] %s\n", e.Kind, e.Msg)
			}
		}
	}
	if fsim.BaseEpochs > 0 {
		// The ablation, on an unskewed rank: the scheduled run against the
		// same configuration at full fidelity throughout.
		baseline := cfg.TraceEpochs(*simEpoch, *simFiles, trainsim.SimObserver{})
		sched := cfg.TraceEpochsFidelity(*simEpoch, *simFiles, fsim, trainsim.SimObserver{})
		fmt.Printf("fidelity ablation: scheduled %v vs full-fidelity %v (%.1f%% faster)\n",
			sched.Round(time.Millisecond), baseline.Round(time.Millisecond),
			100*(1-sched.Seconds()/baseline.Seconds()))
	}
	if *report {
		rep := fanstore.BuildClusterReport(snaps, fanstore.ReportOptions{
			StragglerMetric: "trainsim.epoch.latency",
			Elapsed:         elapsed,
		})
		fmt.Print(rep.String())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, tracers...); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
}

// runMonitoredSim is the -monitor replay: the per-rank registries are
// (optionally) served on live ops endpoints while the epochs replay in
// lockstep, and the health monitor polls after every epoch — the
// simulated version of catching a straggler mid-run instead of in the
// post-run report.
func runMonitoredSim(cfg trainsim.Config, ranks, epochs, files int, skew float64, opsAddr string, pace time.Duration) {
	if skew <= 0 {
		// Derive a skew that lands robustly past the detector: push the
		// skewed rank's I/O to 4x the compute term, so the async
		// pipeline cannot hide it and the epoch stretches well past the
		// 2x-median threshold even after bucket rounding.
		skew = 4 * float64(cfg.ComputeTime()) / float64(cfg.IOTime())
	}
	regs := make([]*metrics.Registry, ranks)
	for i := range regs {
		regs[i] = metrics.NewRegistry()
	}
	events := obs.NewEventLog(0, 0)
	if opsAddr != "" {
		for r := 0; r < ranks; r++ {
			addr, err := obs.OffsetAddr(opsAddr, r)
			if err != nil {
				log.Fatal(err)
			}
			so := obs.ServerOptions{Registry: regs[r]}
			if r == 0 {
				// Rank 0 hosts the monitor, so its endpoint also carries
				// the health instruments and the event log.
				so.Events = events
			}
			srv, err := obs.Serve(addr, so)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			fmt.Printf("rank %d: ops endpoints at http://%s\n", r, srv.Addr())
		}
	}
	res := cfg.RunMonitored(epochs, files, trainsim.MonitoredConfig{
		Ranks:      ranks,
		SkewRank:   ranks - 1,
		Skew:       skew,
		Events:     events,
		Health:     regs[0],
		Registries: regs,
		Pace:       pace,
	})
	if res.FlaggedEpoch >= 0 {
		fmt.Printf("monitor: rank %d flagged as straggler after epoch %d of %d (while the run was live)\n",
			ranks-1, res.FlaggedEpoch, epochs)
	} else {
		fmt.Printf("monitor: no straggler flagged in %d epochs (skew %.1fx)\n", epochs, skew)
	}
	fmt.Printf("events:\n")
	_ = events.WriteText(os.Stdout)
	fmt.Print(res.Report.String())
}
