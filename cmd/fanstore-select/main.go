// Command fanstore-select runs the compressor selection algorithm of
// §VI-B for an application/cluster pair: it measures candidate codecs on
// the application's dataset, derives the per-file decompression budget
// from Equations 1-3 and the cluster's FanStore performance, and reports
// the feasibility table plus the selected compressor (Table VII).
//
//	fanstore-select -case srgan-gtx
//	fanstore-select -case frnn-cpu -codecs lzf,lzsse8,brotli
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"fanstore/internal/cluster"
	"fanstore/internal/dataset"
	"fanstore/internal/selector"
)

var cases = map[string]struct {
	app      cluster.App
	clust    cluster.Cluster
	kind     dataset.Kind
	defaults []string
}{
	"srgan-gtx":  {cluster.SRGANonGTX, cluster.GTX, dataset.EM, []string{"lzsse8", "lz4hc", "brotli", "zling", "lzma"}},
	"frnn-cpu":   {cluster.FRNNonCPU, cluster.CPU, dataset.Tokamak, []string{"lzf", "lzsse8", "brotli"}},
	"srgan-v100": {cluster.SRGANonV100, cluster.V100, dataset.EM, []string{"lz4fast", "lz4hc", "brotli", "lzma"}},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fanstore-select: ")
	var (
		caseName = flag.String("case", "srgan-gtx", "srgan-gtx|frnn-cpu|srgan-v100")
		codecs   = flag.String("codecs", "", "override candidate list (comma separated)")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	tc, ok := cases[strings.ToLower(*caseName)]
	if !ok {
		log.Fatalf("unknown case %q", *caseName)
	}
	names := tc.defaults
	if *codecs != "" {
		names = strings.Split(*codecs, ",")
	}

	// Sample the application's dataset at a measurement-friendly size;
	// per-file costs rescale linearly to the app's real file size.
	fileSize := tc.app.FileSizeBytes()
	sampleSize := int(fileSize)
	if sampleSize > 256<<10 {
		sampleSize = 256 << 10
	}
	n := 4
	if tc.kind == dataset.Tokamak {
		n = 32
	}
	g := dataset.Generator{Kind: tc.kind, Seed: *seed, Size: sampleSize}
	samples := make([][]byte, n)
	for i := range samples {
		samples[i] = g.Bytes(i)
	}

	var cands []selector.Candidate
	for _, name := range names {
		c, err := selector.MeasureCandidate(strings.TrimSpace(name), samples)
		if err != nil {
			log.Fatal(err)
		}
		c.DecompressPerFile = time.Duration(float64(c.DecompressPerFile) * float64(fileSize) / float64(sampleSize))
		cands = append(cands, c)
	}

	nominal := 2.0
	for _, c := range cands {
		if c.Ratio > nominal {
			nominal = c.Ratio
		}
	}
	perf := tc.clust.FanStorePerf(int64(float64(fileSize) / nominal))
	prof := tc.app.SelectorProfile()

	fmt.Printf("case %s: %s on %s, %s I/O, T_iter=%v, C_batch=%d, S'_batch=%.1f MB\n",
		*caseName, tc.app.Name, tc.clust.Name, prof.IO, prof.TIter, prof.CBatch, prof.SBatchMB)
	fmt.Printf("FanStore perf at ~%d-byte compressed files: %.0f files/s, %.0f MB/s\n\n",
		int64(float64(fileSize)/nominal), perf.TptRead, perf.BdwRead)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "compressor\tdecom_cost (us/file)\tcom_ratio\tbudget (us)\tfeasible\n")
	for _, ch := range selector.Evaluate(prof, perf, cands) {
		fmt.Fprintf(w, "%s\t%.0f\t%.2f\t%.0f\t%v\n",
			ch.Name, float64(ch.DecompressPerFile)/float64(time.Microsecond), ch.Ratio,
			float64(ch.PerFileBudget)/float64(time.Microsecond), ch.Feasible)
	}
	w.Flush()

	if best, ok := selector.Select(prof, perf, cands); ok {
		fmt.Printf("\nselected: %s (ratio %.2f, %.0f us/file)\n",
			best.Name, best.Ratio, float64(best.DecompressPerFile)/float64(time.Microsecond))
	} else {
		fmt.Printf("\nselected: none feasible — keep data uncompressed or add nodes\n")
	}
}
