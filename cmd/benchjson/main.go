// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document on stdout, so benchmark trajectories (the
// BENCH_*.json files) are machine-diffable across PRs without external
// tooling. It understands the standard benchmark line shape —
//
//	BenchmarkName/sub-4  20  1314841 ns/op  24.92 MB/s  5 allocs/op
//
// — keeping ns/op, B/op, allocs/op, and MB/s as first-class fields and
// any custom b.ReportMetric units (e.g. "fetches/storm") in a metrics
// map. Non-benchmark lines (pkg headers, PASS/ok, test noise) are used
// only to attribute each benchmark to its package.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	doc := document{Benchmarks: []benchmark{}}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one benchmark result line: name, iteration count,
// then (value, unit) pairs.
func parseLine(pkg, line string) (benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	// Strip the -GOMAXPROCS suffix so names are stable across hosts.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := benchmark{Pkg: pkg, Name: name, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		case "MB/s":
			v := val
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
