package main

import (
	"testing"

	"fanstore"
	"fanstore/internal/dataset"
)

func TestKindByName(t *testing.T) {
	cases := map[string]dataset.Kind{
		"EM": dataset.EM, "em": dataset.EM,
		"Tokamak": dataset.Tokamak, "rs": dataset.Tokamak,
		"LUNG": dataset.Lung, "astro": dataset.Astro,
		"imagenet": dataset.ImageNet, "text": dataset.Language,
	}
	for in, want := range cases {
		got, ok := kindByName(in)
		if !ok || got != want {
			t.Errorf("kindByName(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := kindByName("nope"); ok {
		t.Error("unknown dataset accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	cases := map[string]fanstore.Policy{
		"fifo": fanstore.FIFO, "LRU": fanstore.LRU, "Immediate": fanstore.Immediate,
	}
	for in, want := range cases {
		got, ok := policyByName(in)
		if !ok || got != want {
			t.Errorf("policyByName(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := policyByName("random"); ok {
		t.Error("unknown policy accepted")
	}
}

func TestLE32RoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xdeadbeef, 1 << 31} {
		if le32(u32le(v)) != v {
			t.Errorf("le32(u32le(%#x)) mismatch", v)
		}
	}
}
