// Command fanstore-train runs a complete simulated data-parallel training
// job over FanStore: pack a synthetic dataset, mount it across ranks,
// train with per-epoch shuffling and an asynchronous prefetch pipeline,
// checkpoint every epoch, and report throughput and I/O statistics.
//
//	fanstore-train -ranks 4 -dataset EM -files 64 -epochs 3 -compressor lzsse8
//	fanstore-train -tcp -spill /tmp/fanstore -cache-policy immediate
//	fanstore-train -resume   # continue from the latest checkpoint
//
// With -layers the dataset packs into progressive layered containers and
// -fidelity runs a warmup schedule over them: the scheduled epochs open
// and prefetch at a reduced layer budget (bandwidth-proportional reads),
// and later full-fidelity epochs upgrade resident entries in place by
// fetching only the missing refinement byte ranges:
//
//	fanstore-train -layers 4 -fidelity '1@2' -epochs 4 -report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"fanstore"
	"fanstore/internal/dataset"
	"fanstore/internal/prefetch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fanstore-train: ")
	var (
		ranks      = flag.Int("ranks", 4, "data-parallel ranks")
		dsName     = flag.String("dataset", "EM", "EM|Tokamak|Lung|Astro|ImageNet|Language")
		files      = flag.Int("files", 64, "training file count")
		size       = flag.Int("size", 64<<10, "file size (bytes)")
		epochs     = flag.Int("epochs", 3, "epochs to train")
		batch      = flag.Int("batch", 8, "files per rank per iteration")
		compressor = flag.String("compressor", "lzsse8", "codec configuration or alias")
		workers    = flag.Int("io-threads", 4, "prefetch I/O threads per rank")
		lookahead  = flag.Int("prefetch", 8, "iterations of look-ahead announced to the store's batched prefetcher (0 disables)")
		plan       = flag.Bool("plan", false, "build a whole-epoch prefetch plan at epoch start and stage it under admission control (replaces the reactive -prefetch window)")
		admission  = flag.Int("admission", 0, "staged-bytes admission budget for -plan, MiB (0: live cache headroom)")
		policy     = flag.String("cache-policy", "fifo", "fifo|lru|immediate")
		cacheMB    = flag.Int("cache-mb", 64, "decompressed cache size per rank (MiB)")
		shards     = flag.Int("cache-shards", 0, "cache lock shards, rounded up to a power of two (0: auto)")
		decoders   = flag.Int("decode-workers", 0, "decode pool workers per rank (0: GOMAXPROCS, 1: serial)")
		spill      = flag.String("spill", "", "local-disk backend directory (empty = RAM)")
		tcp        = flag.Bool("tcp", false, "carry messages over loopback TCP")
		resume     = flag.Bool("resume", false, "resume from the latest checkpoint epoch")
		seed       = flag.Int64("seed", 9, "dataset seed")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON timeline of all ranks to this file")
		report     = flag.Bool("report", false, "print the cluster-wide aggregated I/O report after training")
		statsJSON  = flag.Bool("stats-json", false, "emit the final merged registry snapshot as one JSON object on stdout")
		redun      = flag.String("redundancy", "", "accepted for symmetry with fanstore-daemon; ec(k,m) needs an elastic mount")
		opsAddr    = flag.String("ops-addr", "", "serve live HTTP ops endpoints (/metrics /varz /series /healthz /statusz /trace /events); rank r listens on port+r (empty disables)")
		healthInt  = flag.Duration("health-interval", 0, "rank 0 polls every rank's registry at this period and flags stragglers mid-run (0 disables)")
		layers     = flag.Int("layers", 0, "pack every file as a progressive layered container with this many layers (0: classic single-layer objects)")
		fidelity   = flag.String("fidelity", "", "per-epoch layer budget schedule \"level@epochs[,...]\" (e.g. '1@2': base layer for two epochs, then full); needs -layers")
		tuneOn     = flag.Bool("tune", false, "run the online autotuner: each rank hill-climbs its live knobs (decode workers, fetch batch, admission budget) against its own metrics")
		tuneEvery  = flag.Duration("tune-interval", time.Second, "autotuner sample-and-decide period")
	)
	flag.Parse()

	sched, err := prefetch.ParseFidelitySchedule(*fidelity)
	if err != nil {
		log.Fatal(err)
	}
	if len(sched) > 0 && *layers < 2 {
		log.Fatal("-fidelity needs -layers >= 2 (there is only one fidelity without layers)")
	}

	if red, err := fanstore.ParseRedundancy(*redun); err != nil {
		log.Fatal(err)
	} else if red.Mode == fanstore.RedundancyEC {
		log.Fatal("-redundancy ec(k,m) needs an elastic mount; use fanstore-daemon -members with -redundancy instead")
	}

	kind, ok := kindByName(*dsName)
	if !ok {
		log.Fatalf("unknown dataset %q", *dsName)
	}
	pol, ok := policyByName(*policy)
	if !ok {
		log.Fatalf("unknown cache policy %q", *policy)
	}

	// Data preparation (§V-B): done once, outside the job.
	g := dataset.Generator{Kind: kind, Seed: *seed, Size: *size}
	inputs := make([]fanstore.InputFile, *files)
	paths := make([]string, *files)
	for i := range inputs {
		f := g.File(i, *files)
		inputs[i] = fanstore.InputFile{Path: f.Path, Data: f.Data}
		paths[i] = f.Path
	}
	bundle, err := fanstore.Pack(inputs, fanstore.BuildOptions{
		Partitions: *ranks,
		Compressor: *compressor,
		Layers:     *layers,
	})
	if err != nil {
		log.Fatal(err)
	}
	layered := ""
	if *layers > 1 {
		layered = fmt.Sprintf(" (%d layers)", *layers)
	}
	fmt.Printf("dataset %s: %d files x %d bytes, ratio %.2fx with %s%s\n",
		kind, *files, *size, bundle.Ratio(), *compressor, layered)

	launch := fanstore.Run
	if *tcp {
		launch = fanstore.RunTCP
	}
	// The sampler emits the tail partial batch, so an uneven files /
	// (batch*ranks) split trains on every sample with aligned per-rank
	// iteration counts instead of silently dropping the remainder.
	itersPerEpoch := prefetch.SamplerIters(*files, *batch, *ranks)

	// Per-rank observability sinks, collected for post-run export: the
	// ranks run in-process, each writing only its own slot. Registries
	// are pre-created so rank 0's health monitor can fold all of them
	// while the run is live.
	tracers := make([]*fanstore.Tracer, *ranks)
	regs := make([]*fanstore.Registry, *ranks)
	for i := range regs {
		regs[i] = fanstore.NewRegistry()
	}
	var clusterReport fanstore.ClusterReport

	err = launch(*ranks, func(c *fanstore.Comm) error {
		reg := regs[c.Rank()]
		var tr *fanstore.Tracer
		if *traceOut != "" {
			tr = fanstore.NewTracer(c.Rank(), 0)
			tracers[c.Rank()] = tr
		}
		var events *fanstore.EventLog
		if *opsAddr != "" {
			events = fanstore.NewEventLog(c.Rank(), 0)
		}
		opts := fanstore.Options{
			CachePolicy:   pol,
			CacheBytes:    int64(*cacheMB) << 20,
			CacheShards:   *shards,
			DecodeWorkers: *decoders,
			Metrics:       reg,
			Tracer:        tr,
			Events:        events,
		}
		if *spill != "" {
			opts.SpillDir = fmt.Sprintf("%s/rank%04d", *spill, c.Rank())
		}
		node, err := fanstore.Mount(c, [][]byte{bundle.Scatter[c.Rank()]}, nil, opts)
		if err != nil {
			return err
		}
		defer node.Close()

		// The admission budget lives on the node so the autotuner (and
		// anything else) can move it mid-plan; the scheduler below reads
		// it through AdmissionSource on every admission decision.
		node.SetAdmissionBytes(int64(*admission) << 20)
		if *tuneOn {
			ctrl := fanstore.NewTuner(fanstore.TunerOptions{
				Registry: reg,
				Interval: *tuneEvery,
				Knobs:    node.Knobs(),
				Events:   events,
			})
			ctrl.Start()
			defer ctrl.Stop()
			node.AddStatus(ctrl.WriteStatus)
		}

		if *opsAddr != "" {
			addr, err := fanstore.OpsAddrForRank(*opsAddr, c.Rank())
			if err != nil {
				return err
			}
			ops, err := node.StartOps(addr)
			if err != nil {
				return err
			}
			defer ops.Close()
			fmt.Printf("rank %d: ops endpoints at http://%s\n", c.Rank(), ops.Addr())
		}
		if *healthInt > 0 && c.Rank() == 0 {
			mon := fanstore.NewHealthMonitor(fanstore.HealthMonitorOptions{
				Interval: *healthInt,
				Collect:  fanstore.CollectRegistries(regs),
				Flag:     fanstore.FlagStragglers(fanstore.ReportOptions{}),
				Metrics:  reg,
				Events:   events,
			})
			mon.Start()
			defer mon.Stop()
		}

		startEpoch := 0
		var weights uint32
		if *resume {
			data, epoch, ok, err := node.Resume("ckpt")
			if err != nil {
				return err
			}
			if ok {
				startEpoch = epoch + 1
				fmt.Sscanf(string(data), "weights=%x", &weights)
				if c.Rank() == 0 {
					fmt.Printf("resuming from epoch %d\n", epoch)
				}
			}
		}

		start := time.Now()
		var samples int64
		for epoch := startEpoch; epoch < startEpoch+*epochs; epoch++ {
			order := rand.New(rand.NewSource(int64(epoch))).Perm(*files)
			shuffled := make([]string, *files)
			for i, idx := range order {
				shuffled[i] = paths[idx]
			}
			// Fidelity schedule: demand opens and the reactive prefetcher
			// follow the node-level budget; the epoch planner gets the
			// level explicitly. Epochs past the schedule run at full
			// fidelity (level 0), upgrading warm entries in place.
			level := sched.LevelAt(epoch)
			node.SetFidelity(level)
			if c.Rank() == 0 && len(sched) > 0 {
				if level == 0 {
					fmt.Printf("epoch %3d: fidelity full\n", epoch)
				} else {
					fmt.Printf("epoch %3d: fidelity level %d/%d\n", epoch, level, *layers)
				}
			}
			popts := prefetch.Options{Workers: *workers, Depth: 2, Metrics: reg, Tracer: tr}
			sampler := prefetch.RangeSampler(shuffled, *batch, c.Rank(), *ranks)
			switch {
			case *plan:
				// Clairvoyant mode: the permutation is fully known now, so
				// materialize the epoch's remote access sequence and stream
				// it under cache-pressure admission control.
				epochPlan := prefetch.BuildPlan(sampler, node)
				popts.Scheduler = prefetch.NewScheduler(node, epochPlan, prefetch.SchedOptions{
					AdmissionSource: node.AdmissionBytes,
					Fidelity:        level,
					Metrics:         reg,
					Tracer:          tr,
				})
			case *lookahead > 0:
				// Announce the sampler's upcoming window to the node so
				// remote objects arrive in batched FetchMany round trips
				// and land in the cache before the I/O threads open them.
				popts.Prefetcher = node
				popts.Lookahead = *lookahead
			}
			pipe := prefetch.New(node, sampler, popts)
			for it := 0; it < itersPerEpoch; it++ {
				b, ok, err := pipe.Next()
				if err != nil {
					pipe.Stop()
					return err
				}
				if !ok {
					break
				}
				samples += int64(len(b.Data))
				var grad uint32
				for _, img := range b.Data {
					grad ^= crc32.ChecksumIEEE(img)
				}
				parts, err := c.Allgather(u32le(grad))
				if err != nil {
					return err
				}
				for _, p := range parts {
					weights ^= le32(p)
				}
			}
			pipe.Stop()
			ckpt := fmt.Sprintf("ckpt/rank%d-epoch%03d.bin", c.Rank(), epoch)
			if err := node.WriteFile(ckpt, []byte(fmt.Sprintf("weights=%08x", weights))); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("epoch %3d: weights=%08x\n", epoch, weights)
			}
		}

		st := node.Stats()
		fmt.Printf("rank %d: %.0f samples/s | local %d remote %d | decompress %d | cache hits=%d evict=%d | prefetched opens=%d (batched fetches=%d)\n",
			c.Rank(), float64(samples)/time.Since(start).Seconds(),
			st.LocalOpens, st.RemoteOpens, st.Decompresses,
			st.Cache.Hits, st.Cache.Evictions,
			st.PrefetchedOpens, st.BatchedFetches)
		if st.FetchBytesSaved > 0 || st.FetchUpgrades > 0 {
			fmt.Printf("rank %d: fidelity saved=%d B upgrades=%d\n",
				c.Rank(), st.FetchBytesSaved, st.FetchUpgrades)
		}

		if *report || *statsJSON {
			// Collective: every rank contributes its snapshot; rank 0
			// keeps the merged report for post-run printing.
			rep, err := fanstore.GatherReport(c, reg, fanstore.ReportOptions{Elapsed: time.Since(start)})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				clusterReport = rep
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	if *report {
		fmt.Print(clusterReport.String())
	}
	if *statsJSON {
		out, err := json.Marshal(clusterReport.Merged)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", out)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := fanstore.WriteChromeTrace(f, tracers...); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
}

func u32le(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func le32(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func kindByName(name string) (dataset.Kind, bool) {
	switch strings.ToLower(name) {
	case "em":
		return dataset.EM, true
	case "tokamak", "rs":
		return dataset.Tokamak, true
	case "lung":
		return dataset.Lung, true
	case "astro", "astronomy":
		return dataset.Astro, true
	case "imagenet":
		return dataset.ImageNet, true
	case "language", "text":
		return dataset.Language, true
	}
	return 0, false
}

func policyByName(name string) (fanstore.Policy, bool) {
	switch strings.ToLower(name) {
	case "fifo":
		return fanstore.FIFO, true
	case "lru":
		return fanstore.LRU, true
	case "immediate":
		return fanstore.Immediate, true
	}
	return 0, false
}
