package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "a.txt"), []byte("alpha"), 0o644)
	os.WriteFile(filepath.Join(dir, "sub", "b.txt"), []byte("beta"), 0o644)
	files, err := loadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("loaded %d files", len(files))
	}
	byPath := map[string]string{}
	for _, f := range files {
		byPath[f.Path] = string(f.Data)
	}
	if byPath["a.txt"] != "alpha" || byPath["sub/b.txt"] != "beta" {
		t.Fatalf("bad contents: %+v", byPath)
	}
	if _, err := loadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := loadDir("/does/not/exist"); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestGenerate(t *testing.T) {
	for _, name := range []string{"EM", "tokamak", "Lung", "astro", "imagenet", "text", "tif", "npz"} {
		files, err := generate(name, 1, 3, 1024)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(files) != 3 || len(files[0].Data) != 1024 {
			t.Fatalf("%s: %d files of %d bytes", name, len(files), len(files[0].Data))
		}
	}
	if _, err := generate("bogus", 1, 1, 10); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
