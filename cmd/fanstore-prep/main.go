// Command fanstore-prep is the data preparation tool of §V-B: it packages
// a dataset into FanStore's compressed partitioned representation
// (Table I), ready to be staged to node-local storage and mounted.
//
// It can pack a real directory tree:
//
//	fanstore-prep -data /path/to/dataset -partitions 8 -compressor lzsse8 -out ./packed
//
// or generate and pack one of the paper's synthetic datasets:
//
//	fanstore-prep -synthetic EM -files 64 -partitions 8 -out ./packed
//
// Directories listed in -broadcast are replicated to every node
// (validation data) instead of scattered.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"

	"fanstore/internal/dataset"
	store "fanstore/internal/fanstore"
	"fanstore/internal/pack"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fanstore-prep: ")
	var (
		dataDir    = flag.String("data", "", "directory tree to pack")
		synthetic  = flag.String("synthetic", "", "synthetic dataset: EM|Tokamak|Lung|Astro|ImageNet|Language")
		files      = flag.Int("files", 32, "file count for -synthetic")
		size       = flag.Int("size", 0, "file size override for -synthetic (bytes)")
		seed       = flag.Int64("seed", 42, "generator seed for -synthetic")
		partitions = flag.Int("partitions", 4, "scatter partition count")
		compressor = flag.String("compressor", "lzsse8", "codec configuration or paper alias")
		workers    = flag.Int("workers", 0, "compression threads (0 = all cores)")
		broadcast  = flag.String("broadcast", "", "comma-separated dir prefixes replicated to every node")
		out        = flag.String("out", "packed", "output directory")
		planNodes  = flag.Int("plan-nodes", 0, "also print a placement plan for this many nodes")
		planCapMB  = flag.Int64("plan-capacity-mb", 0, "per-node capacity for -plan-nodes (MiB)")
	)
	flag.Parse()

	var inputs []pack.InputFile
	var err error
	switch {
	case *dataDir != "" && *synthetic != "":
		log.Fatal("use either -data or -synthetic, not both")
	case *dataDir != "":
		inputs, err = loadDir(*dataDir)
	case *synthetic != "":
		inputs, err = generate(*synthetic, *seed, *files, *size)
	default:
		log.Fatal("one of -data or -synthetic is required")
	}
	if err != nil {
		log.Fatal(err)
	}

	var bdirs []string
	if *broadcast != "" {
		bdirs = strings.Split(*broadcast, ",")
	}
	bundle, err := pack.Build(inputs, pack.BuildOptions{
		Partitions:    *partitions,
		Compressor:    *compressor,
		Workers:       *workers,
		BroadcastDirs: bdirs,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, blob := range bundle.Scatter {
		name := filepath.Join(*out, fmt.Sprintf("part-%04d.fst", i))
		if err := os.WriteFile(name, blob, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if bundle.Broadcast != nil {
		if err := os.WriteFile(filepath.Join(*out, "broadcast.fst"), bundle.Broadcast, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("packed %d files into %d partition(s)", len(inputs), len(bundle.Scatter))
	if bundle.Broadcast != nil {
		fmt.Printf(" + broadcast")
	}
	fmt.Printf("\nraw %d bytes -> packed %d bytes (ratio %.2fx) with %s\n",
		bundle.RawBytes, bundle.PackedBytes, bundle.Ratio(), *compressor)

	// Placement preview (§IV-C1): which node loads which partitions.
	if *planNodes > 0 {
		capacity := *planCapMB << 20
		if capacity <= 0 {
			log.Fatal("-plan-nodes requires -plan-capacity-mb")
		}
		sizes := make([]int64, len(bundle.Scatter))
		for i, blob := range bundle.Scatter {
			sizes[i] = int64(len(blob))
		}
		plan, err := store.PlanPlacement(sizes, *planNodes, capacity)
		if err != nil {
			log.Fatalf("placement: %v", err)
		}
		for n := 0; n < *planNodes; n++ {
			fmt.Printf("node %d: owns %v replicates %v\n", n, plan.Own[n], plan.Replicas[n])
		}
	}
}

// loadDir walks a directory tree into input files with paths relative to
// its root.
func loadDir(root string) ([]pack.InputFile, error) {
	var out []pack.InputFile
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		out = append(out, pack.InputFile{Path: filepath.ToSlash(rel), Data: data})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no files under %s", root)
	}
	return out, nil
}

func generate(name string, seed int64, files, size int) ([]pack.InputFile, error) {
	var kind dataset.Kind
	found := false
	for _, k := range dataset.Kinds() {
		if strings.EqualFold(k.Spec().Name, name) || strings.EqualFold(k.Spec().Format, name) {
			kind, found = k, true
			break
		}
	}
	if !found {
		switch strings.ToLower(name) {
		case "em":
			kind, found = dataset.EM, true
		case "tokamak":
			kind, found = dataset.Tokamak, true
		case "lung":
			kind, found = dataset.Lung, true
		case "astro", "astronomy":
			kind, found = dataset.Astro, true
		case "imagenet":
			kind, found = dataset.ImageNet, true
		case "language", "text":
			kind, found = dataset.Language, true
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown synthetic dataset %q", name)
	}
	g := dataset.Generator{Kind: kind, Seed: seed, Size: size}
	out := make([]pack.InputFile, files)
	for i := range out {
		f := g.File(i, files)
		out[i] = pack.InputFile{Path: f.Path, Data: f.Data}
	}
	return out, nil
}
