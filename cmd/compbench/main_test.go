package main

import (
	"testing"

	"fanstore/internal/dataset"
)

func TestKindByName(t *testing.T) {
	for in, want := range map[string]dataset.Kind{
		"EM": dataset.EM, "RS": dataset.Tokamak, "language": dataset.Language,
	} {
		got, ok := kindByName(in)
		if !ok || got != want {
			t.Errorf("kindByName(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := kindByName("bogus"); ok {
		t.Error("unknown dataset accepted")
	}
}
