// Command compbench is the lzbench-equivalent sweep of §VII-D: it
// measures every registered (codec, option, filter) configuration — or a
// named subset — on a synthetic dataset, reporting compression ratio and
// decompression cost. Its output is the raw material of Fig. 7 and
// Table IV.
//
//	compbench -dataset EM -size 262144
//	compbench -dataset Tokamak -codecs lzsse8,lz4hc,lzma,xz
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"fanstore/internal/codec"
	"fanstore/internal/dataset"
	"fanstore/internal/lossy"
	"fanstore/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compbench: ")
	var (
		dsName = flag.String("dataset", "EM", "EM|Tokamak|Lung|Astro|ImageNet|Language")
		files  = flag.Int("files", 3, "sample file count")
		size   = flag.Int("size", 256<<10, "sample file size (bytes)")
		seed   = flag.Int64("seed", 42, "generator seed")
		names  = flag.String("codecs", "", "comma-separated configs/aliases; empty = whole registry")
		sortBy = flag.String("sort", "ratio", "sort key: ratio|speed|name")
		lossyF = flag.Bool("lossy", false, "sweep the lossy SZ/ZFP extension on float32 data instead")
	)
	flag.Parse()

	kind, ok := kindByName(*dsName)
	if !ok {
		log.Fatalf("unknown dataset %q", *dsName)
	}
	sz := *size
	if kind == dataset.Tokamak && !flagSet("size") {
		sz = 1200 // paper-scale tiny records
	}
	g := dataset.Generator{Kind: kind, Seed: *seed, Size: sz}
	samples := make([][]byte, *files)
	for i := range samples {
		samples[i] = g.Bytes(i)
	}

	if *lossyF {
		sweepLossy(kind, samples)
		return
	}

	var list []string
	if *names != "" {
		list = strings.Split(*names, ",")
	} else {
		for _, cfg := range codec.Registry() {
			list = append(list, cfg.Name)
		}
	}
	fmt.Printf("dataset %s: %d files x %d bytes; %d configurations\n", kind, *files, sz, len(list))

	start := time.Now()
	cands := selector.MeasureAll(list, samples)
	switch *sortBy {
	case "ratio":
		sort.Slice(cands, func(i, j int) bool { return cands[i].Ratio > cands[j].Ratio })
	case "name":
		sort.Slice(cands, func(i, j int) bool { return cands[i].Name < cands[j].Name })
	case "speed":
		// MeasureAll already sorts by decompression cost.
	default:
		log.Fatalf("unknown sort key %q", *sortBy)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "config\tratio\tdecompress us/file\tdecompress MB/s\n")
	for _, c := range cands {
		mbps := float64(sz) / 1e6 / c.DecompressPerFile.Seconds()
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.0f\n",
			c.Name, c.Ratio, float64(c.DecompressPerFile)/float64(time.Microsecond), mbps)
	}
	w.Flush()
	fmt.Printf("swept %d configurations in %v\n", len(cands), time.Since(start).Round(time.Millisecond))
}

// sweepLossy reports the §VIII future-work extension: error-bounded SZ
// and fixed-rate ZFP on the dataset's bytes viewed as float32 arrays.
func sweepLossy(kind dataset.Kind, samples [][]byte) {
	var src []float32
	for _, s := range samples {
		for i := 0; i+4 <= len(s); i += 4 {
			bits := uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24
			v := math.Float32frombits(bits)
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e9 {
				v = 0 // container header bytes decode as junk floats
			}
			src = append(src, v)
		}
	}
	fmt.Printf("lossy sweep on %s: %d float32 values\n", kind, len(src))
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "codec\tratio\tmax abs error\tdecompress us\n")
	codecs := []lossy.FloatCodec{
		lossy.SZ{ErrBound: 1e-4}, lossy.SZ{ErrBound: 1e-2}, lossy.SZ{ErrBound: 1},
		lossy.ZFP{Rate: 8}, lossy.ZFP{Rate: 12}, lossy.ZFP{Rate: 16}, lossy.ZFP{Rate: 24},
	}
	for _, c := range codecs {
		coded, err := c.Compress(nil, src)
		if err != nil {
			log.Fatalf("%s: %v", c.Name(), err)
		}
		start := time.Now()
		got, err := c.Decompress(nil, coded)
		if err != nil {
			log.Fatalf("%s: %v", c.Name(), err)
		}
		elapsed := time.Since(start)
		maxErr := 0.0
		for i := range src {
			d := math.Abs(float64(src[i]) - float64(got[i]))
			if d > maxErr {
				maxErr = d
			}
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.3g\t%.0f\n",
			c.Name(), lossy.Ratio(len(src), len(coded)), maxErr,
			float64(elapsed)/float64(time.Microsecond))
	}
	w.Flush()
}

func kindByName(name string) (dataset.Kind, bool) {
	switch strings.ToLower(name) {
	case "em":
		return dataset.EM, true
	case "tokamak", "rs":
		return dataset.Tokamak, true
	case "lung":
		return dataset.Lung, true
	case "astro", "astronomy":
		return dataset.Astro, true
	case "imagenet":
		return dataset.ImageNet, true
	case "language", "text":
		return dataset.Language, true
	}
	return 0, false
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
