// Command fanstore-daemon runs ONE rank of a multi-process FanStore
// deployment — the paper's mpiexec shape (§V-D), with a rendezvous
// directory standing in for the process manager. Start one per "node",
// all pointing at the same rendezvous directory and partition files from
// fanstore-prep:
//
//	fanstore-prep -synthetic EM -files 32 -partitions 4 -out packed
//	for r in 0 1 2 3; do
//	  fanstore-daemon -rendezvous /tmp/fst -rank $r -size 4 \
//	                  -part packed/part-000$r.fst -reads 64 &
//	done; wait
//
// Each daemon mounts its partition, joins the collective metadata
// exchange, serves its objects to peers, reads -reads random files from
// the global namespace (fetching remote ones over TCP), reports stats,
// and shuts down collectively.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"fanstore"
	"fanstore/internal/mpi"
)

func main() {
	log.SetFlags(0)
	var (
		rendezvous = flag.String("rendezvous", "", "shared rendezvous directory (required)")
		rank       = flag.Int("rank", -1, "this process's rank")
		size       = flag.Int("size", 0, "world size")
		parts      = flag.String("part", "", "comma-separated partition files this rank owns")
		broadcast  = flag.String("broadcast", "", "broadcast partition file (optional)")
		reads      = flag.Int("reads", 32, "random whole-file reads to perform")
		timeout    = flag.Duration("timeout", 30*time.Second, "rendezvous timeout")
		spill      = flag.String("spill", "", "local-disk backend directory (optional)")
		seed       = flag.Int64("seed", 0, "read-order seed (default: rank)")
		workers    = flag.Int("workers", 0, "concurrent fetch handlers served by this daemon (0: auto)")
		decoders   = flag.Int("decode-workers", 0, "decode pool workers (0: GOMAXPROCS, 1: serial)")
		shards     = flag.Int("cache-shards", 0, "cache lock shards, rounded up to a power of two (0: auto)")
		fetchTO    = flag.Duration("fetch-timeout", 0, "per-attempt deadline on remote fetches (0: none)")
		fetchRetry = flag.Int("fetch-retries", 0, "extra same-peer attempts after a timed-out or errored fetch")
		lookahead  = flag.Int("prefetch", 0, "reads of look-ahead staged via batched FetchMany (0: fetch on demand)")
		traceOut   = flag.String("trace", "", "write this rank's Chrome trace-event JSON timeline to this file")
		report     = flag.Bool("report", false, "run the cluster report collective; rank 0 prints the merged view")
		members    = flag.Int("members", 0, "initial elastic members: ranks 0..members-1 mount, the rest are spare slots (0: static world)")
		joinLate   = flag.Bool("join", false, "join a running elastic cluster as a new member (requires -members; no -part)")
		leaveEarly = flag.Bool("leave", false, "leave the elastic cluster after the reads, draining partitions to the survivors")
		redun      = flag.String("redundancy", "", "elastic redundancy: replicate (default) or ec(k,m), e.g. ec(4,2)")
		opsAddr    = flag.String("ops-addr", "", "serve live HTTP ops endpoints; pass the same base address to every daemon, rank r listens on port+r (empty disables)")
		healthInt  = flag.Duration("health-interval", 0, "rank 0 scrapes every member's /varz at this period and flags stragglers mid-run (needs -ops-addr; 0 disables)")
		healthN    = flag.Int("health-members", 0, "member count the health monitor scrapes (0: -members for elastic worlds, else -size)")
		tuneOn     = flag.Bool("tune", false, "run the online autotuner against this daemon's live knobs (decode workers, fetch batch size)")
		tuneEvery  = flag.Duration("tune-interval", time.Second, "autotuner sample-and-decide period")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("fanstore-daemon[%d]: ", *rank))

	elastic := *members > 0 || *joinLate
	if *rendezvous == "" || *rank < 0 || *size <= 0 {
		log.Fatal("-rendezvous, -rank and -size are required")
	}
	if *joinLate && *members <= 0 {
		log.Fatal("-join requires -members (the cluster's initial member count)")
	}
	if *leaveEarly && !elastic {
		log.Fatal("-leave requires an elastic cluster (-members/-join)")
	}
	if *parts == "" && !*joinLate {
		log.Fatal("-part is required (a joining member receives partitions from the rebalance instead)")
	}

	var own [][]byte
	if *parts != "" {
		for _, p := range strings.Split(*parts, ",") {
			blob, err := os.ReadFile(strings.TrimSpace(p))
			if err != nil {
				log.Fatal(err)
			}
			own = append(own, blob)
		}
	}
	var bcast []byte
	if *broadcast != "" {
		var err error
		if bcast, err = os.ReadFile(*broadcast); err != nil {
			log.Fatal(err)
		}
	}

	var comm *fanstore.Comm
	var leave func()
	var err error
	if elastic {
		// Only the initial members rendezvous; spare slots (and this
		// rank, if it joins late) resolve lazily when they come up.
		waitFor := make([]int, 0, *members)
		for r := 0; r < *members; r++ {
			waitFor = append(waitFor, r)
		}
		comm, leave, err = mpi.JoinTCPMembers(*rendezvous, *rank, *size, waitFor, *timeout)
	} else {
		comm, leave, err = mpi.JoinTCP(*rendezvous, *rank, *size, *timeout)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer leave()

	reg := fanstore.NewRegistry()
	var tr *fanstore.Tracer
	if *traceOut != "" {
		tr = fanstore.NewTracer(*rank, 0)
	}
	red, err := fanstore.ParseRedundancy(*redun)
	if err != nil {
		log.Fatal(err)
	}
	if red.Mode == fanstore.RedundancyEC && !elastic {
		log.Fatal("-redundancy ec(k,m) needs an elastic mount (-members); static worlds replicate via -broadcast/ring placement")
	}
	if *healthInt > 0 && *opsAddr == "" {
		log.Fatal("-health-interval needs -ops-addr (the monitor scrapes member /varz endpoints)")
	}
	var events *fanstore.EventLog
	if *opsAddr != "" {
		events = fanstore.NewEventLog(*rank, 0)
	}
	opts := fanstore.Options{
		SpillDir:      *spill,
		FetchWorkers:  *workers,
		FetchTimeout:  *fetchTO,
		FetchRetries:  *fetchRetry,
		CacheShards:   *shards,
		DecodeWorkers: *decoders,
		Metrics:       reg,
		Tracer:        tr,
		Redundancy:    red,
		Events:        events,
	}
	var node *fanstore.Node
	if elastic {
		eopts := fanstore.ElasticOptions{Options: opts, InitialMembers: *members}
		if *joinLate {
			node, err = fanstore.JoinCluster(comm, 0, eopts)
		} else {
			node, err = fanstore.MountElastic(comm, own, eopts)
		}
	} else {
		node, err = fanstore.Mount(comm, own, bcast, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	if elastic {
		log.Printf("mounted: %d files global, %d local (elastic, node %d, map v%d)",
			node.NumFiles(), node.LocalFiles(), node.ID(), node.MapVersion())
	} else {
		log.Printf("mounted: %d files global, %d local", node.NumFiles(), node.LocalFiles())
	}

	if *tuneOn {
		ctrl := fanstore.NewTuner(fanstore.TunerOptions{
			Registry: reg,
			Interval: *tuneEvery,
			Knobs:    node.Knobs(),
			Events:   events,
		})
		ctrl.Start()
		defer ctrl.Stop()
		node.AddStatus(ctrl.WriteStatus)
		log.Printf("tune: controller live, deciding every %v", *tuneEvery)
	}
	if *opsAddr != "" {
		addr, err := fanstore.OpsAddrForRank(*opsAddr, *rank)
		if err != nil {
			log.Fatal(err)
		}
		ops, err := node.StartOps(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		log.Printf("ops: serving http://%s", ops.Addr())
	}
	if *healthInt > 0 && *rank == 0 {
		n := *healthN
		if n <= 0 {
			n = *size
			if elastic && *members > 0 {
				n = *members
			}
		}
		peers := make([]string, n)
		for r := range peers {
			addr, err := fanstore.OpsAddrForRank(*opsAddr, r)
			if err != nil {
				log.Fatal(err)
			}
			peers[r] = addr
		}
		mon := fanstore.NewHealthMonitor(fanstore.HealthMonitorOptions{
			Interval: *healthInt,
			Collect:  fanstore.CollectHTTP(peers, 0),
			Flag:     fanstore.FlagStragglers(fanstore.ReportOptions{}),
			Metrics:  reg,
			Events:   events,
		})
		mon.Start()
		defer mon.Stop()
		log.Printf("health: monitoring %d members every %v", n, *healthInt)
	}

	// Enumerate the namespace, then read random files — local or remote.
	var paths []string
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := node.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			child := e.Name
			if dir != "" {
				child = dir + "/" + e.Name
			}
			if e.IsDir {
				if err := walk(child); err != nil {
					return err
				}
			} else {
				paths = append(paths, child)
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		log.Fatal(err)
	}
	s := *seed
	if s == 0 {
		s = int64(*rank + 1)
	}
	rng := rand.New(rand.NewSource(s))
	// The read order is drawn up front — the training-loop shape, where
	// the sampler's sequence is known ahead of the consumer — so the
	// upcoming window can be announced to the batched prefetcher.
	sequence := make([]string, *reads)
	for i := range sequence {
		sequence[i] = paths[rng.Intn(len(paths))]
	}
	start := time.Now()
	var byteCount int64
	for i, path := range sequence {
		if *lookahead > 0 && i%*lookahead == 0 {
			end := i + 2**lookahead
			if end > len(sequence) {
				end = len(sequence)
			}
			node.Prefetch(sequence[i:end])
		}
		data, err := node.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		byteCount += int64(len(data))
	}
	elapsed := time.Since(start)
	st := node.Stats()
	log.Printf("read %d files (%d bytes) in %v: %d local, %d remote, %d decompressions",
		*reads, byteCount, elapsed.Round(time.Millisecond),
		st.LocalOpens, st.RemoteOpens, st.Decompresses)
	m := node.Metrics()
	log.Printf("open latency: %s", m.Open)
	log.Printf("daemon: served %d (not-found %d, errors %d), peak in-service %d, peak queue %d",
		st.Daemon.Served, st.Daemon.NotFound, st.Daemon.Errors,
		st.Daemon.MaxInService, st.Daemon.MaxQueue)
	if st.Daemon.Served > 0 {
		log.Printf("service time: %s", m.Service)
	}
	if st.RPC.Calls > 0 {
		log.Printf("fetch calls: %d (%d retries, %d timeouts, %d failovers)",
			st.RPC.Calls, st.RPC.Retries, st.RPC.Timeouts, st.Failovers)
	}
	if st.BatchedFetches > 0 {
		log.Printf("prefetch: %d batched fetches staged entries serving %d opens (cache hit rate %.0f%%)",
			st.BatchedFetches, st.PrefetchedOpens,
			float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses)*100)
	}

	if elastic {
		log.Printf("elastic: map v%d, rebalance moved %d bytes here, %d transfers pending",
			node.MapVersion(), node.RebalancedBytes(), node.RebalancePending())
	}

	if *report {
		if elastic {
			// The report reduction is a world-wide collective; with
			// partial membership the empty slots would never answer.
			log.Printf("report: skipped (collective report needs a static world)")
		} else {
			// Collective: every daemon must be launched with -report too.
			rep, err := fanstore.GatherReport(comm, reg, fanstore.ReportOptions{Elapsed: elapsed})
			if err != nil {
				log.Fatal(err)
			}
			if *rank == 0 {
				fmt.Print(rep.String())
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := fanstore.WriteChromeTrace(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("trace: wrote %s", *traceOut)
	}

	// Shutdown. A leaving member drains its partitions to the survivors
	// and departs alone; everyone else shuts down collectively (the
	// elastic path replaces the barrier with a bye/ack handshake through
	// the coordinator) — no rank exits while peers may still fetch.
	if *leaveEarly {
		if err := node.LeaveCluster(); err != nil {
			log.Fatal(err)
		}
		log.Printf("left the cluster")
		return
	}
	if err := node.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("done")
}
