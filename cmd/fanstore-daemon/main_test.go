package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// TestDaemonEndToEnd builds the daemon and runs a real 3-process
// deployment against partitions produced by the pack layer — the full
// §V-D shape with nothing shared but the filesystem and TCP.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches subprocesses")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fanstore-daemon")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Pack a dataset with the prep tool's library path.
	packed := filepath.Join(dir, "packed")
	prep := exec.Command("go", "run", "../fanstore-prep",
		"-synthetic", "EM", "-files", "12", "-partitions", "3",
		"-size", "16384", "-out", packed)
	if out, err := prep.CombinedOutput(); err != nil {
		t.Fatalf("prep: %v\n%s", err, out)
	}

	rdv := filepath.Join(dir, "rdv")
	const size = 3
	cmds := make([]*exec.Cmd, size)
	outs := make([]bytes.Buffer, size)
	for r := 0; r < size; r++ {
		cmds[r] = exec.Command(bin,
			"-rendezvous", rdv,
			"-rank", strconv.Itoa(r),
			"-size", strconv.Itoa(size),
			"-part", filepath.Join(packed, "part-000"+strconv.Itoa(r)+".fst"),
			"-reads", "16",
		)
		cmds[r].Stdout = &outs[r]
		cmds[r].Stderr = &outs[r]
		if err := cmds[r].Start(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < size; r++ {
		if err := cmds[r].Wait(); err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
		out := outs[r].String()
		if !bytes.Contains([]byte(out), []byte("mounted: 12 files global")) {
			t.Fatalf("rank %d missing global namespace:\n%s", r, out)
		}
		if !bytes.Contains([]byte(out), []byte("done")) {
			t.Fatalf("rank %d did not shut down cleanly:\n%s", r, out)
		}
		if !bytes.Contains([]byte(out), []byte("remote")) {
			t.Fatalf("rank %d reported no remote activity:\n%s", r, out)
		}
	}
	_ = os.RemoveAll(rdv)
}
