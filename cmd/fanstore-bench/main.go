// Command fanstore-bench measures FanStore read performance (the live
// counterpart of Tables III and VI): it packs a synthetic dataset, mounts
// it across in-process ranks, and times whole-file reads through the
// POSIX-style interface — locally and across the simulated interconnect.
//
//	fanstore-bench -ranks 4 -files 64 -size 524288 -compressor lzsse8
//
// With -model it instead prints the Table III device-model rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fanstore/internal/dataset"
	"fanstore/internal/fanstore"
	"fanstore/internal/iobench"
	"fanstore/internal/metrics"
	"fanstore/internal/mpi"
	"fanstore/internal/obs"
	"fanstore/internal/pack"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fanstore-bench: ")
	var (
		ranks      = flag.Int("ranks", 4, "in-process FanStore ranks")
		files      = flag.Int("files", 64, "dataset file count")
		size       = flag.Int("size", 512<<10, "file size in bytes")
		compressor = flag.String("compressor", "memcpy", "codec configuration or alias")
		rounds     = flag.Int("rounds", 3, "read passes over the dataset")
		policy     = flag.String("cache", "fifo", "cache policy: fifo|lru|immediate")
		shards     = flag.Int("cache-shards", 0, "cache lock shards, rounded up to a power of two (0: auto)")
		decoders   = flag.Int("decode-workers", 0, "decode pool workers per rank (0: GOMAXPROCS, 1: serial)")
		model      = flag.Bool("model", false, "print Table III device-model rows instead")
		hist       = flag.Bool("hist", false, "print rank 0's latency histograms")
		statsJSON  = flag.Bool("stats-json", false, "emit the final merged registry snapshot as one JSON object on stdout")
		opsAddr    = flag.String("ops-addr", "", "serve live HTTP ops endpoints while the benchmark runs (rank r listens on port+r; empty disables)")
	)
	flag.Parse()

	if *model {
		w := tabwriter.NewWriter(log.Writer(), 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "solution\tfile_size\tfiles/s\n")
		for _, r := range iobench.Table3(iobench.Table3Sizes) {
			fmt.Fprintf(w, "%s\t%d\t%.0f\n", r.Solution, r.FileSize, r.FilesPerSec)
		}
		w.Flush()
		return
	}

	var pol fanstore.Policy
	switch *policy {
	case "fifo":
		pol = fanstore.FIFO
	case "lru":
		pol = fanstore.LRU
	case "immediate":
		pol = fanstore.Immediate
	default:
		log.Fatalf("unknown cache policy %q", *policy)
	}

	g := dataset.Generator{Kind: dataset.ImageNet, Seed: 7, Size: *size}
	inputs := make([]pack.InputFile, *files)
	paths := make([]string, *files)
	for i := range inputs {
		f := g.File(i, *files)
		inputs[i] = pack.InputFile{Path: f.Path, Data: f.Data}
		paths[i] = f.Path
	}
	bundle, err := pack.Build(inputs, pack.BuildOptions{Partitions: *ranks, Compressor: *compressor})
	if err != nil {
		log.Fatal(err)
	}

	results := make([]iobench.Result, *ranks)
	snaps := make([]metrics.RegistrySnapshot, *ranks)
	err = mpi.Run(*ranks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry()
		node, err := fanstore.Mount(c, [][]byte{bundle.Scatter[c.Rank()]}, nil, fanstore.Options{
			CachePolicy:   pol,
			CacheShards:   *shards,
			DecodeWorkers: *decoders,
			Metrics:       reg,
		})
		if err != nil {
			return err
		}
		defer func() { snaps[c.Rank()] = reg.Snapshot() }()
		defer node.Close()
		if *opsAddr != "" {
			addr, err := obs.OffsetAddr(*opsAddr, c.Rank())
			if err != nil {
				return err
			}
			ops, err := node.StartOps(addr)
			if err != nil {
				return err
			}
			defer ops.Close()
			fmt.Printf("rank %d: ops endpoints at http://%s\n", c.Rank(), ops.Addr())
		}
		res, err := iobench.MeasureNode(node, paths, *rounds)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 && *hist {
			m := node.Metrics()
			fmt.Printf("rank 0 open() latency: %s\n%s", m.Open, m.Open.Bars(40))
			if m.Fetch.Count > 0 {
				fmt.Printf("rank 0 remote fetch latency: %s\n%s", m.Fetch, m.Fetch.Bars(40))
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var totFiles float64
	var totMB float64
	for r, res := range results {
		fmt.Printf("rank %d: %.0f files/s, %.0f MB/s (%d files in %v)\n",
			r, res.FilesPerSec, res.MBPerSec, res.Files, res.Elapsed)
		totFiles += res.FilesPerSec
		totMB += res.MBPerSec
	}
	fmt.Printf("aggregate: %.0f files/s, %.0f MB/s across %d ranks (compressor %s, cache %s)\n",
		totFiles, totMB, *ranks, *compressor, *policy)

	if *statsJSON {
		var merged metrics.RegistrySnapshot
		for _, s := range snaps {
			merged = merged.Merge(s)
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(merged); err != nil {
			log.Fatal(err)
		}
	}
}
