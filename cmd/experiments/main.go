// Command experiments regenerates the paper's evaluation tables and
// figures (§VII) from this reproduction. Each experiment prints a block
// comparing paper-reported values with values measured/modeled here.
//
// Usage:
//
//	experiments -list
//	experiments -run all [-quick] [-seed N]
//	experiments -run table3,fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fanstore/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quick = flag.Bool("quick", false, "smaller samples and sweeps")
		seed  = flag.Int64("seed", 42, "dataset generation seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	for _, e := range selected {
		fmt.Printf("==============================================================\n")
		fmt.Printf("%s — %s\n", strings.ToUpper(e.ID), e.Title)
		fmt.Printf("==============================================================\n")
		start := time.Now()
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
